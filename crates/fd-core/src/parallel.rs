//! Adaptive parallelism policy shared by every data-parallel kernel.
//!
//! PR 1 gave each kernel its own hard-coded engagement threshold
//! (`MIN_PAIRS_PER_WORKER`, `MIN_INVERSIONS_PARALLEL`, …) and trusted the
//! caller's thread knob blindly. `BENCH_PR1.json` showed where that breaks:
//! on a 1-core host an explicit `--threads 4` spawned four workers anyway and
//! *lost* 10–14% of wall-clock to scheduling overhead. This module centralises
//! both decisions:
//!
//! * [`clamp_threads`] resolves a user-facing thread knob against the
//!   machine (`0` = auto; explicit values are capped at the available
//!   core count, so oversubscription is impossible by construction);
//! * [`decide`] is the pure per-batch policy: given the number of work
//!   items, a per-item cost hint, and an already-clamped thread budget, it
//!   returns how many workers to actually spawn. Small batches fall back to
//!   the sequential path.
//!
//! `decide` deliberately does **not** consult the machine — it is a pure
//! function of its arguments, so the thread-invariance property tests can
//! drive the parallel code paths on any host. All machine awareness lives in
//! [`clamp_threads`], which is applied once at the configuration boundary.
//!
//! Once `decide` has chosen a worker count, [`fan_out_stealing`] runs the
//! batch: the work is split into more chunks than workers and an atomic
//! cursor hands chunks out on demand, so a worker that drew cheap chunks
//! steals the next index instead of idling behind a fixed `div_ceil` split.
//! Each chunk owns a pre-assigned output slot, which is what makes the
//! schedule's nondeterminism invisible to callers — see the function docs.
//!
//! ## Cost-hint units
//!
//! `decide`'s `cost_hint` is the **approximate per-item cost in
//! u32-compare-equivalent units** — one label comparison, one row move, or
//! one tree-node visit all count as roughly one unit. Every call site must
//! pass a *per-item* figure, never a batch total:
//!
//! | site                | items        | per-item cost hint                  |
//! |---------------------|--------------|-------------------------------------|
//! | `pair_compare`      | tuple pairs  | `width` (one compare per attribute) |
//! | `cover_invert`      | non-FDs      | ~1Ki tree-node visits per inversion |
//! | `sampling_clusters` | attributes   | `n_rows` (counting sort row moves)  |
//! | `tane_products`     | candidates   | `n_rows` (one row move per product) |
//! | `agree_sets`        | clusters     | mean `pairs_in(c) × width`          |
//!
//! The bit-packed kernel compares ~8 attributes per cycle, so `pair_compare`
//! slightly overstates its cost in these units; that only makes the policy
//! engage parallelism a little early, which the per-worker quantum absorbs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Minimum work units per worker before spawning is worth it.
///
/// A *unit* is roughly one `u32` comparison (one label probe, one row move).
/// The constant preserves PR 1's measured engagement points: the pair kernel
/// engaged at 4096 pairs × ~16 attrs ≈ 64Ki units per worker, and cover
/// inversion at 64 jobs × ~1Ki tree-node visits.
pub const MIN_UNITS_PER_WORKER: u64 = 65_536;

/// Chunks per worker a work-stealing fan-out aims for. More chunks mean
/// finer rebalancing under skew but more claim traffic; 4 keeps the claim
/// cost negligible while letting one slow chunk be offset by three cheap
/// ones elsewhere.
pub const STEAL_CHUNKS_PER_WORKER: usize = 4;

/// Cached `available_parallelism()` (the syscall is not free and the value
/// cannot change mid-process for our purposes). 0 = not yet queried.
static AVAILABLE_CORES: AtomicUsize = AtomicUsize::new(0);

/// Number of available cores, queried once and cached.
pub fn available_cores() -> usize {
    let cached = AVAILABLE_CORES.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    AVAILABLE_CORES.store(cores, Ordering::Relaxed);
    cores
}

/// Resolves a user-facing thread knob: `0` means one worker per available
/// core; explicit values are clamped to the available core count so a
/// `--threads 8` run on a 1-core container degrades to the sequential path
/// instead of oversubscribing.
pub fn clamp_threads(requested: usize) -> usize {
    let cores = available_cores();
    if requested == 0 {
        cores
    } else {
        requested.min(cores)
    }
}

/// The adaptive engagement policy: how many workers to spawn for a batch of
/// `work_items` items costing roughly `cost_hint` units each, given an
/// already-clamped budget of `threads`.
///
/// `cost_hint` is the approximate **per-item** cost in u32-compare-equivalent
/// units (see the module docs for the unit table) — callers must not pass a
/// batch total, or the policy over-engages by a factor of `work_items`.
///
/// Returns a value in `1..=threads.max(1)`, never exceeding `work_items`
/// (an idle worker is pure overhead) and never splitting the batch finer
/// than [`MIN_UNITS_PER_WORKER`] units per worker.
pub fn decide(work_items: usize, cost_hint: u64, threads: usize) -> usize {
    if threads <= 1 || work_items <= 1 {
        return 1;
    }
    let total_units = (work_items as u64).saturating_mul(cost_hint.max(1));
    let by_cost = (total_units / MIN_UNITS_PER_WORKER).max(1);
    threads.min(work_items).min(usize::try_from(by_cost).unwrap_or(usize::MAX))
}

/// [`decide`] with a call-site label: records the chosen worker count into a
/// `parallel.workers.<site>` histogram when telemetry is enabled, so a run's
/// snapshot shows where the policy engaged parallelism and at what width.
/// Identical to [`decide`] in every other respect.
pub fn decide_at(site: &str, work_items: usize, cost_hint: u64, threads: usize) -> usize {
    let workers = decide(work_items, cost_hint, threads);
    if fd_telemetry::is_enabled() {
        fd_telemetry::registry()
            .observe_by_name(&format!("parallel.workers.{site}"), workers as u64);
    }
    workers
}

/// Counters of one [`fan_out_stealing`] call, summed over its workers.
///
/// All fields are *diagnostics*: which worker claims which chunk depends on
/// scheduling, so `steals` varies run to run. Nothing downstream of a
/// fan-out may depend on these values.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Chunks claimed in total (equals the fan-out's chunk count).
    pub chunks_claimed: u64,
    /// Claims that diverged from the fixed `div_ceil` split — the chunk ran
    /// on a different worker than a static split would have assigned it to.
    /// 0 means the static split would have balanced perfectly; high values
    /// mean skew made workers redistribute.
    pub steals: u64,
    /// Worker threads that participated (1 = the batch ran inline).
    pub workers: usize,
}

/// How many chunks a work-stealing fan-out should split `items` into:
/// [`STEAL_CHUNKS_PER_WORKER`] per worker, but never chunks smaller than
/// `min_items_per_chunk` (claim and slot overhead must stay amortized) and
/// never more chunks than items.
pub fn steal_chunk_count(items: usize, workers: usize, min_items_per_chunk: usize) -> usize {
    if items == 0 {
        return 0;
    }
    let by_min = items.div_ceil(min_items_per_chunk.max(1));
    (workers * STEAL_CHUNKS_PER_WORKER).min(by_min).min(items).max(1)
}

/// Runs `run_chunk(i)` for every `i in 0..n_chunks` on up to `workers`
/// scoped threads, with chunk indices handed out by an atomic claim cursor:
/// a worker finishing its chunk immediately steals the next unclaimed index,
/// so skewed per-chunk costs no longer idle workers the way a fixed
/// `div_ceil` split did.
///
/// **Determinism contract:** every chunk index is claimed exactly once, and
/// `run_chunk` must write only to state owned by its chunk index (a
/// pre-assigned output slot). Under that contract the set of executed
/// chunks — and therefore the caller-visible result — is byte-identical for
/// every worker count and schedule; only the wall clock and the
/// [`StealStats`] vary.
///
/// When telemetry is enabled, records per-site steal counters
/// (`parallel.steal_count`, `parallel.chunks_claimed`,
/// `parallel.steals.<site>`) and a per-worker busy-fraction histogram
/// (`parallel.busy_pct.<site>`, percent of scope wall-clock spent inside
/// `run_chunk`). Panics in `run_chunk` are re-raised on the caller's thread.
pub fn fan_out_stealing<F>(site: &str, n_chunks: usize, workers: usize, run_chunk: F) -> StealStats
where
    F: Fn(usize) + Sync,
{
    if n_chunks == 0 {
        return StealStats::default();
    }
    if workers <= 1 || n_chunks == 1 {
        for i in 0..n_chunks {
            // Cooperative faults have no meaning for a pure compute chunk;
            // panics and delays are performed inside the macro.
            let _ = fd_faults::inject!("parallel.worker");
            run_chunk(i);
        }
        return StealStats { chunks_claimed: n_chunks as u64, steals: 0, workers: 1 };
    }
    let telemetry = fd_telemetry::is_enabled();
    let cursor = AtomicUsize::new(0);
    let steal_total = AtomicU64::new(0);
    // The static split a non-stealing fan-out would have used; claims
    // outside a worker's static share count as steals.
    let static_share = n_chunks.div_ceil(workers).max(1);
    let scope_start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursor = &cursor;
                let steal_total = &steal_total;
                let run_chunk = &run_chunk;
                s.spawn(move || {
                    let mut steals = 0u64;
                    let mut busy = std::time::Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        if i / static_share != w {
                            steals += 1;
                        }
                        // A delay here stalls one worker and lets the claim
                        // cursor rebalance the remaining chunks; a panic is
                        // re-raised on the caller's thread by the join below.
                        let _ = fd_faults::inject!("parallel.worker");
                        if telemetry {
                            let t0 = Instant::now();
                            run_chunk(i);
                            busy += t0.elapsed();
                        } else {
                            run_chunk(i);
                        }
                    }
                    steal_total.fetch_add(steals, Ordering::Relaxed);
                    busy
                })
            })
            .collect();
        for handle in handles {
            let busy = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            if telemetry {
                let wall = scope_start.elapsed().as_secs_f64().max(1e-9);
                let pct = ((busy.as_secs_f64() / wall) * 100.0).min(100.0) as u64;
                fd_telemetry::registry()
                    .observe_by_name(&format!("parallel.busy_pct.{site}"), pct);
            }
        }
    });
    let stats = StealStats {
        chunks_claimed: n_chunks as u64,
        steals: steal_total.load(Ordering::Relaxed),
        workers,
    };
    fd_telemetry::counter!("parallel.steal_count", stats.steals);
    fd_telemetry::counter!("parallel.chunks_claimed", stats.chunks_claimed);
    if telemetry {
        fd_telemetry::registry()
            .counter_add_by_name(&format!("parallel.steals.{site}"), stats.steals);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_budget_stays_sequential() {
        assert_eq!(decide(1_000_000, 1_000, 1), 1);
        assert_eq!(decide(1_000_000, 1_000, 0), 1);
    }

    #[test]
    fn tiny_batches_fall_back_to_sequential() {
        // 100 pairs × 16 attrs = 1.6K units — far below one worker's quantum.
        assert_eq!(decide(100, 16, 8), 1);
        assert_eq!(decide(0, 16, 8), 1);
        assert_eq!(decide(1, u64::MAX, 8), 1);
    }

    #[test]
    fn large_batches_use_the_full_budget() {
        // 1M pairs × 16 attrs = 16M units → 244 workers by cost; capped at 8.
        assert_eq!(decide(1_000_000, 16, 8), 8);
    }

    #[test]
    fn worker_count_never_exceeds_items() {
        assert_eq!(decide(3, u64::MAX, 8), 3);
    }

    #[test]
    fn intermediate_batches_scale_down() {
        // 8192 pairs × 16 attrs = 128Ki units → 2 workers even with 8 budget.
        assert_eq!(decide(8192, 16, 8), 2);
        // PR 1's engagement point: 4096 pairs × 16 attrs = exactly one quantum.
        assert_eq!(decide(4096, 16, 8), 1);
    }

    #[test]
    fn zero_cost_hint_is_treated_as_one_unit() {
        assert_eq!(decide(1 << 20, 0, 4), 4);
    }

    #[test]
    fn decide_at_matches_decide() {
        for (items, cost, threads) in [(1_000_000, 16, 8), (100, 16, 8), (3, u64::MAX, 8)] {
            assert_eq!(decide_at("test.site", items, cost, threads), decide(items, cost, threads));
        }
    }

    #[test]
    fn clamp_respects_the_machine() {
        let cores = available_cores();
        assert!(cores >= 1);
        assert_eq!(clamp_threads(0), cores);
        assert_eq!(clamp_threads(1), 1);
        assert!(clamp_threads(usize::MAX) <= cores);
    }

    #[test]
    fn decide_is_monotone_in_items() {
        let mut prev = 0;
        for items in [0, 1, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let w = decide(items, 64, 16);
            assert!(w >= prev, "items={items}: {w} < {prev}");
            prev = w;
        }
    }

    #[test]
    fn steal_chunk_count_bounds() {
        assert_eq!(steal_chunk_count(0, 4, 256), 0);
        // 4 chunks per worker when items allow.
        assert_eq!(steal_chunk_count(100_000, 4, 256), 16);
        // Capped by the minimum chunk size...
        assert_eq!(steal_chunk_count(1_000, 4, 256), 4);
        assert_eq!(steal_chunk_count(300, 8, 256), 2);
        // ...and never more chunks than items.
        assert_eq!(steal_chunk_count(3, 8, 1), 3);
        assert_eq!(steal_chunk_count(1, 8, 256), 1);
    }

    #[test]
    fn stealing_claims_every_chunk_exactly_once() {
        use std::sync::atomic::AtomicU32;
        for workers in [1usize, 2, 3, 8] {
            let n_chunks = 23;
            let hits: Vec<AtomicU32> = (0..n_chunks).map(|_| AtomicU32::new(0)).collect();
            let stats = fan_out_stealing("test.claims", n_chunks, workers, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "chunk {i} at workers={workers}");
            }
            assert_eq!(stats.chunks_claimed, n_chunks as u64);
            assert!(stats.workers >= 1 && stats.workers <= workers.max(1));
        }
    }

    #[test]
    fn stealing_results_match_sequential_for_any_worker_count() {
        // Each chunk writes a pure function of its index into its own slot;
        // the assembled output must be schedule-invariant.
        let n_chunks = 64;
        let sequential: Vec<u64> = (0..n_chunks as u64).map(|i| i * i + 1).collect();
        for workers in [1usize, 2, 3, 4, 7, 16] {
            let out: Vec<std::sync::Mutex<u64>> =
                (0..n_chunks).map(|_| std::sync::Mutex::new(0)).collect();
            fan_out_stealing("test.slots", n_chunks, workers, |i| {
                *out[i].lock().unwrap_or_else(|e| e.into_inner()) = (i as u64) * (i as u64) + 1;
            });
            let got: Vec<u64> =
                out.iter().map(|m| *m.lock().unwrap_or_else(|e| e.into_inner())).collect();
            assert_eq!(got, sequential, "workers={workers}");
        }
    }

    #[test]
    fn stealing_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            fan_out_stealing("test.panic", 8, 2, |i| {
                if i == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("chunk 5 exploded"), "original panic message lost: {msg:?}");
    }

    #[test]
    fn empty_fan_out_is_a_no_op() {
        let stats = fan_out_stealing("test.empty", 0, 4, |_| panic!("must not run"));
        assert_eq!(stats, StealStats::default());
    }
}
