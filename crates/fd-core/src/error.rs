//! Structured errors for fallible discovery paths.
//!
//! Library crates in the workspace report failures through
//! [`DiscoveryError`] instead of `unwrap()`/`expect()` (which remain only in
//! test code — `fd-core` and `fd-relation` deny `clippy::unwrap_used`
//! outside tests). Budget trips are deliberately **not** errors: budgeted
//! runs return partial results tagged with a
//! [`Termination`](crate::budget::Termination); this type covers the cases
//! where no usable result exists at all.

use crate::budget::Termination;
use std::fmt;

/// A discovery run failed without producing a usable result.
#[derive(Debug)]
pub enum DiscoveryError {
    /// The run was cut short before any sound partial answer existed.
    Interrupted(Termination),
    /// The run (or one of its workers) panicked; the harness isolated it.
    Panicked {
        /// The panic payload rendered as text, when it was a string.
        message: String,
    },
    /// The input relation, configuration, or request was unusable.
    InvalidInput(String),
    /// An underlying I/O failure (ingestion, result spooling).
    Io(std::io::Error),
}

impl DiscoveryError {
    /// Renders a `catch_unwind` payload into a [`DiscoveryError::Panicked`],
    /// extracting the message when the payload is a string (the common case
    /// for `panic!`/`assert!`).
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        DiscoveryError::Panicked { message }
    }

    /// The termination reason this error maps to in run reports.
    pub fn termination(&self) -> Termination {
        match self {
            DiscoveryError::Interrupted(t) => *t,
            DiscoveryError::Panicked { .. } => Termination::Panicked,
            DiscoveryError::InvalidInput(_) | DiscoveryError::Io(_) => Termination::Cancelled,
        }
    }
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::Interrupted(t) => write!(f, "run interrupted: {t}"),
            DiscoveryError::Panicked { message } => write!(f, "run panicked: {message}"),
            DiscoveryError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            DiscoveryError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DiscoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiscoveryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DiscoveryError {
    fn from(e: std::io::Error) -> Self {
        DiscoveryError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_payloads_render() {
        let payload = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        let err = DiscoveryError::from_panic(payload.as_ref());
        match &err {
            DiscoveryError::Panicked { message } => assert_eq!(message, "boom 7"),
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(err.termination(), Termination::Panicked);
        assert!(err.to_string().contains("boom 7"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: DiscoveryError = io.into();
        assert!(err.to_string().contains("gone"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn interrupted_carries_its_reason() {
        let err = DiscoveryError::Interrupted(Termination::DeadlineExceeded);
        assert_eq!(err.termination(), Termination::DeadlineExceeded);
        assert!(err.to_string().contains("deadline"));
    }
}
