//! Negative and positive covers (Definition 5) backed by per-RHS
//! [`LhsTree`]s, plus the generic Ncover → Pcover inversion of Algorithm 3.
//!
//! These containers are shared by every induction-style algorithm in the
//! workspace (EulerFD, AID-FD, Fdep): the algorithms differ in *how* they
//! obtain non-FDs, not in how covers are stored and inverted.

use crate::attrset::{AttrId, AttrSet};
use crate::budget::CancelToken;
use crate::fd::{Fd, FdSet};
use crate::lhs_tree::LhsTree;

/// The negative cover: for each RHS attribute, the set of **maximal**
/// non-FD LHSs observed so far. Maximality is maintained incrementally —
/// inserting a non-FD drops every stored generalization of it, and a non-FD
/// that already has a stored specialization is ignored (Lemma 1 makes both
/// redundant).
#[derive(Clone, Debug)]
pub struct NCover {
    per_rhs: Vec<LhsTree>,
    len: usize,
    insertions: usize,
}

impl NCover {
    /// An empty negative cover over an `n_attrs`-column schema.
    pub fn new(n_attrs: usize) -> Self {
        NCover { per_rhs: (0..n_attrs).map(|_| LhsTree::new()).collect(), len: 0, insertions: 0 }
    }

    /// Number of attributes in the schema.
    pub fn n_attrs(&self) -> usize {
        self.per_rhs.len()
    }

    /// Number of maximal non-FDs currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no non-FD is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds the non-FD `non_fd` (Algorithm 2 lines 2–5, streaming form).
    /// Returns true if the cover changed, i.e. the non-FD was not already
    /// implied by a stored specialization.
    pub fn add(&mut self, non_fd: Fd) -> bool {
        let tree = &mut self.per_rhs[non_fd.rhs as usize];
        if tree.contains_superset_of(&non_fd.lhs) {
            return false;
        }
        let removed = tree.remove_subsets_of(&non_fd.lhs);
        self.len -= removed.len();
        tree.insert(non_fd.lhs);
        self.len += 1;
        self.insertions += 1;
        true
    }

    /// Total successful insertions over the cover's lifetime. Absorptions of
    /// generalized non-FDs shrink `len` but never this counter, so growth
    /// rates ("percentage of additions", Section V-F) are measured against
    /// it rather than against net size.
    pub fn insertions(&self) -> usize {
        self.insertions
    }

    /// Records one sampled tuple pair's agree set `S`: every attribute
    /// `a ∉ S` yields the non-FD `S ↛ a`. Returns the number of cover
    /// insertions performed.
    pub fn add_agree_set(&mut self, agree: AttrSet) -> usize {
        let n = self.n_attrs();
        let mut added = 0;
        for a in 0..n {
            let a = a as AttrId;
            if !agree.contains(a) && self.add(Fd::new(agree, a)) {
                added += 1;
            }
        }
        added
    }

    /// Like [`NCover::add_agree_set`], but also appends each non-FD that was
    /// actually inserted to `inserted` — exactly the set an incremental
    /// inversion needs to process (non-FDs absorbed by an existing
    /// specialization change nothing downstream).
    pub fn add_agree_set_collect(&mut self, agree: AttrSet, inserted: &mut Vec<Fd>) -> usize {
        let n = self.n_attrs();
        let mut added = 0;
        for a in 0..n {
            let a = a as AttrId;
            if agree.contains(a) {
                continue;
            }
            let non_fd = Fd::new(agree, a);
            if self.add(non_fd) {
                inserted.push(non_fd);
                added += 1;
            }
        }
        added
    }

    /// True if `fd` is invalidated by the cover: some stored non-FD
    /// `Y ↛ fd.rhs` has `fd.lhs ⊆ Y` (Lemma 1).
    pub fn invalidates(&self, fd: &Fd) -> bool {
        self.per_rhs[fd.rhs as usize].contains_superset_of(&fd.lhs)
    }

    /// All stored maximal non-FDs.
    pub fn to_fds(&self) -> Vec<Fd> {
        let mut out = Vec::with_capacity(self.len);
        for (rhs, tree) in self.per_rhs.iter().enumerate() {
            tree.for_each(|lhs| out.push(Fd::new(lhs, rhs as AttrId)));
        }
        out
    }

    /// The per-RHS tree (used by verification tooling).
    pub fn tree(&self, rhs: AttrId) -> &LhsTree {
        &self.per_rhs[rhs as usize]
    }

    /// Discards the RHS-`rhs` tree and rebuilds it from `lhss`, keeping only
    /// the maximal sets among them (insertion-order independent: maximality
    /// absorption commutes). The delete path of incremental maintenance uses
    /// this — dead evidence cannot be "subtracted" from a maximal-set store,
    /// but the surviving agree sets reconstruct the tree exactly. Successful
    /// re-insertions count toward [`NCover::insertions`] like any others.
    pub fn rebuild_rhs(&mut self, rhs: AttrId, lhss: impl IntoIterator<Item = AttrSet>) {
        let tree = &mut self.per_rhs[rhs as usize];
        self.len -= tree.len();
        *tree = LhsTree::new();
        for lhs in lhss {
            self.add(Fd::new(lhs, rhs));
        }
    }
}

/// The positive cover under construction: for each RHS attribute, the LHSs
/// of the current minimal FD candidates. Initialized with the most general
/// candidate `∅ → A` per attribute and refined by inverting non-FDs
/// (Algorithm 3).
#[derive(Clone, Debug)]
pub struct PCover {
    per_rhs: Vec<LhsTree>,
    len: usize,
}

/// Mutation counts of one [`PCover::invert`] call, used by EulerFD's second
/// cycle to compute `GR_Pcover`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InvertDelta {
    /// FD candidates removed because a non-FD invalidated them.
    pub removed: usize,
    /// Specialized FD candidates added in their place.
    pub added: usize,
}

impl InvertDelta {
    /// Total churn (adds + removes).
    pub fn churn(&self) -> usize {
        self.removed + self.added
    }
}

impl std::ops::AddAssign for InvertDelta {
    fn add_assign(&mut self, rhs: Self) {
        self.removed += rhs.removed;
        self.added += rhs.added;
    }
}

impl PCover {
    /// A positive cover seeded with `∅ → A` for every attribute
    /// (Algorithm 3 lines 1–2).
    pub fn initialized(n_attrs: usize) -> Self {
        let mut per_rhs: Vec<LhsTree> = (0..n_attrs).map(|_| LhsTree::new()).collect();
        for tree in &mut per_rhs {
            tree.insert(AttrSet::empty());
        }
        PCover { per_rhs, len: n_attrs }
    }

    /// Number of attributes in the schema.
    pub fn n_attrs(&self) -> usize {
        self.per_rhs.len()
    }

    /// Number of FD candidates currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no candidate is stored (only possible mid-inversion).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inverts a single non-FD into the cover (Algorithm 3, `invert`):
    /// removes every candidate generalization of `non_fd` and re-adds
    /// minimal specializations that escape it.
    pub fn invert(&mut self, non_fd: Fd) -> InvertDelta {
        let n = self.n_attrs();
        let delta =
            invert_into_tree(&mut self.per_rhs[non_fd.rhs as usize], n, non_fd.rhs, &non_fd.lhs);
        self.len = self.len + delta.added - delta.removed;
        delta
    }

    /// Inverts a batch of non-FDs, sharded per RHS attribute across up to
    /// `threads` scoped worker threads. Equivalent to sorting `non_fds` most
    /// specialized first (Algorithm 2's order) and calling
    /// [`PCover::invert`] for each: a non-FD `X ↛ A` only ever touches the
    /// RHS-`A` tree, so the per-RHS work lists are independent, and each is
    /// processed in the sorted order regardless of which worker runs it —
    /// the resulting cover is byte-identical for every thread count.
    ///
    /// Drains `non_fds` and returns the summed churn.
    pub fn invert_batch(&mut self, non_fds: &mut Vec<Fd>, threads: usize) -> InvertDelta {
        self.invert_batch_inner(non_fds, threads, None)
    }

    /// [`PCover::invert_batch`] with cooperative cancellation: each shard
    /// checks `token` between non-FDs and stops early once it is cancelled.
    /// Non-FDs not yet processed are left in `non_fds` (most specialized
    /// first), so the caller can decide between finishing the drain later
    /// (restoring soundness w.r.t. all sampled pairs) and abandoning it.
    /// With a never-cancelled token this is byte-identical to
    /// [`PCover::invert_batch`].
    pub fn invert_batch_cancellable(
        &mut self,
        non_fds: &mut Vec<Fd>,
        threads: usize,
        token: &CancelToken,
    ) -> InvertDelta {
        self.invert_batch_inner(non_fds, threads, Some(token))
    }

    fn invert_batch_inner(
        &mut self,
        non_fds: &mut Vec<Fd>,
        threads: usize,
        token: Option<&CancelToken>,
    ) -> InvertDelta {
        let n = self.n_attrs();
        // Stable sort: within one RHS, equal-length non-FDs keep arrival
        // order, exactly like the sequential sort-then-drain loop.
        non_fds.sort_by_key(|fd| std::cmp::Reverse(fd.lhs.len()));
        let mut per_rhs_work: Vec<Vec<AttrSet>> = vec![Vec::new(); n];
        let total = non_fds.len();
        for fd in non_fds.drain(..) {
            per_rhs_work[fd.rhs as usize].push(fd.lhs);
        }
        /// One RHS tree's work list plus its result slots. A job is only
        /// ever processed by the single worker that claims its index, so
        /// per-job state needs no aggregation ordering.
        struct InvertJob<'t> {
            rhs: AttrId,
            tree: &'t mut LhsTree,
            work: Vec<AttrSet>,
            delta: InvertDelta,
            unprocessed: Vec<AttrSet>,
        }
        let mut jobs: Vec<InvertJob<'_>> = Vec::new();
        for ((rhs, tree), work) in self.per_rhs.iter_mut().enumerate().zip(per_rhs_work) {
            if !work.is_empty() {
                jobs.push(InvertJob {
                    rhs: rhs as AttrId,
                    tree,
                    work,
                    delta: InvertDelta::default(),
                    unprocessed: Vec::new(),
                });
            }
        }
        // Small batches invert inline: spawning threads costs more than the
        // tree surgery it would parallelize. The cutoff cannot change the
        // result, only the wall clock. One inversion walks ~1Ki tree nodes —
        // the per-item cost hint (in u32-compare-equivalent units) handed to
        // the shared adaptive policy.
        let workers = crate::parallel::decide_at("cover_invert", total, INVERSION_COST_UNITS, threads)
            .min(jobs.len().max(1));
        let run_job = |job: &mut InvertJob<'_>| {
            for lhs in job.work.drain(..) {
                if token.is_some_and(|t| t.is_cancelled()) {
                    job.unprocessed.push(lhs);
                    continue;
                }
                job.delta += invert_into_tree(job.tree, n, job.rhs, &lhs);
            }
        };
        if workers <= 1 {
            for job in &mut jobs {
                run_job(job);
            }
        } else {
            // Work-stealing fan-out: each per-RHS job is one claimable
            // chunk. Skewed RHS work lists (one hot attribute can dominate)
            // no longer idle workers behind a fixed split; determinism holds
            // because each tree is mutated by exactly one claimer, in the
            // job's sorted order, regardless of which worker that is.
            let slots: Vec<std::sync::Mutex<&mut InvertJob<'_>>> =
                jobs.iter_mut().map(std::sync::Mutex::new).collect();
            crate::parallel::fan_out_stealing("cover_invert", slots.len(), workers, |i| {
                let mut job = slots[i].lock().unwrap_or_else(|e| e.into_inner());
                run_job(&mut job);
            });
        }
        // Aggregate in job (= RHS) order, never completion order, so the
        // leftovers pushed back into `non_fds` are schedule-invariant.
        let mut delta = InvertDelta::default();
        for job in jobs {
            delta += job.delta;
            non_fds.extend(job.unprocessed.into_iter().map(|lhs| Fd::new(lhs, job.rhs)));
        }
        self.len = self.len + delta.added - delta.removed;
        delta
    }

    /// Discards the RHS-`rhs` tree and re-derives it from scratch: the most
    /// general candidate `∅` is re-seeded and every non-FD LHS in `non_fds`
    /// is inverted, most specialized first (exactly the [`PCover::invert`]
    /// order). This is the revival step of incremental maintenance after
    /// deletes: candidates killed by since-dead evidence reappear, bottom-up
    /// minimal, because the rebuilt tree is the exact complement of the
    /// surviving non-FDs (Algorithm 3 is deterministic in the inputs).
    ///
    /// Returns the number of *revived* candidates — LHSs present in the
    /// rebuilt tree that were not candidates before the call.
    pub fn rebuild_rhs(&mut self, rhs: AttrId, mut non_fds: Vec<AttrSet>) -> usize {
        let n = self.n_attrs();
        let tree = &mut self.per_rhs[rhs as usize];
        let old: crate::hash::FastHashSet<AttrSet> = tree.to_vec().into_iter().collect();
        self.len -= tree.len();
        *tree = LhsTree::new();
        tree.insert(AttrSet::empty());
        non_fds.sort_by_key(|lhs| std::cmp::Reverse(lhs.len()));
        for lhs in &non_fds {
            invert_into_tree(tree, n, rhs, lhs);
        }
        self.len += tree.len();
        let mut revived = 0usize;
        tree.for_each(|lhs| {
            if !old.contains(&lhs) {
                revived += 1;
            }
        });
        revived
    }

    /// True if `fd` (or a generalization of it) is a current candidate.
    pub fn covers(&self, fd: &Fd) -> bool {
        self.per_rhs[fd.rhs as usize].contains_subset_of(&fd.lhs)
    }

    /// True if exactly `fd` is a current candidate.
    pub fn contains(&self, fd: &Fd) -> bool {
        self.per_rhs[fd.rhs as usize].collect_subsets_of(&fd.lhs).contains(&fd.lhs)
    }

    /// Extracts the final FD set. Candidates `∅ → A` are kept — they assert
    /// that column `A` is constant, expressed as the most general FD.
    pub fn to_fdset(&self) -> FdSet {
        let mut out = FdSet::new();
        for (rhs, tree) in self.per_rhs.iter().enumerate() {
            tree.for_each(|lhs| {
                out.insert(Fd::new(lhs, rhs as AttrId));
            });
        }
        out
    }
}

/// Approximate tree-node visits per inversion, the cost hint handed to
/// [`crate::parallel::decide`] by [`PCover::invert_batch`]. With the policy's
/// 64Ki-unit quantum this reproduces the former engagement point of 64
/// inversions per worker.
const INVERSION_COST_UNITS: u64 = 1024;

/// One non-FD's inversion against a single RHS tree (the body shared by
/// [`PCover::invert`] and the per-RHS shards of [`PCover::invert_batch`]).
fn invert_into_tree(tree: &mut LhsTree, n_attrs: usize, rhs: AttrId, non_fd_lhs: &AttrSet) -> InvertDelta {
    let mut delta = InvertDelta::default();
    loop {
        let generals = tree.remove_subsets_of(non_fd_lhs);
        if generals.is_empty() {
            break;
        }
        delta.removed += generals.len();
        for general in generals {
            for attr in 0..n_attrs {
                let attr = attr as AttrId;
                // Skip attributes already in the candidate or equal to its
                // RHS (keeps candidates non-trivial), and attributes of
                // the non-FD's LHS — those specializations stay inside the
                // invalidated region and would be removed again next loop.
                if general.contains(attr) || attr == rhs || non_fd_lhs.contains(attr) {
                    continue;
                }
                let candidate = general.with(attr);
                if tree.contains_subset_of(&candidate) {
                    continue; // a more general candidate already covers it
                }
                tree.insert(candidate);
                delta.added += 1;
            }
        }
    }
    delta
}

/// Builds the positive cover implied by a set of non-FDs: initializes the
/// most general candidates and inverts every non-FD (Algorithm 3 main loop).
/// This is the whole of Fdep's second half and the final step of AID-FD.
pub fn invert_ncover(ncover: &NCover) -> PCover {
    invert_ncover_parallel(ncover, 1)
}

/// [`invert_ncover`] with the per-RHS inversion work fanned out over up to
/// `threads` scoped worker threads (see [`PCover::invert_batch`]). The
/// result is identical for every thread count.
pub fn invert_ncover_parallel(ncover: &NCover, threads: usize) -> PCover {
    let mut pcover = PCover::initialized(ncover.n_attrs());
    let mut non_fds = ncover.to_fds();
    pcover.invert_batch(&mut non_fds, threads);
    pcover
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bits: &[u16]) -> AttrSet {
        AttrSet::from_attrs(bits.iter().copied())
    }

    #[test]
    fn ncover_keeps_only_maximal_non_fds() {
        let mut nc = NCover::new(5);
        assert!(nc.add(Fd::new(s(&[2, 3]), 0))); // BG ↛ N
        assert!(nc.add(Fd::new(s(&[2, 3, 4]), 0))); // MBG ↛ N specializes it
        assert_eq!(nc.len(), 1);
        // Re-adding the absorbed generalization is a no-op.
        assert!(!nc.add(Fd::new(s(&[2, 3]), 0)));
        assert_eq!(nc.len(), 1);
        assert!(nc.add(Fd::new(s(&[1, 3]), 0))); // AG ↛ N incomparable
        assert_eq!(nc.len(), 2);
    }

    #[test]
    fn ncover_invalidates_generalizations() {
        let mut nc = NCover::new(5);
        nc.add(Fd::new(s(&[2, 3, 4]), 0));
        assert!(nc.invalidates(&Fd::new(s(&[2]), 0)));
        assert!(nc.invalidates(&Fd::new(s(&[2, 3, 4]), 0)));
        assert!(!nc.invalidates(&Fd::new(s(&[1]), 0)));
        assert!(!nc.invalidates(&Fd::new(s(&[2]), 1)));
    }

    #[test]
    fn agree_set_expands_to_non_fds() {
        let mut nc = NCover::new(4);
        // Agree on {0,1}: non-FDs {0,1} ↛ 2 and {0,1} ↛ 3.
        assert_eq!(nc.add_agree_set(s(&[0, 1])), 2);
        assert_eq!(nc.len(), 2);
        // Same agree set again adds nothing.
        assert_eq!(nc.add_agree_set(s(&[0, 1])), 0);
        // A sub-agree-set is entirely absorbed.
        assert_eq!(nc.add_agree_set(s(&[0])), 1); // {0}↛1 is new; {0}↛2, {0}↛3 absorbed
    }

    /// Replays the paper's Figure 5 inversion for RHS N (ids: N=0, A=1, B=2,
    /// G=3, M=4) with non-FDs MBG, AG, AMB.
    #[test]
    fn figure_5_inversion() {
        let mut pc = PCover::initialized(5);
        // Restrict to RHS N for the walkthrough: other RHS trees untouched.
        // (a) invert MBG ↛ N: ∅→N removed, A→N created.
        let d = pc.invert(Fd::new(s(&[4, 2, 3]), 0));
        assert_eq!(d.removed, 1);
        assert!(pc.contains(&Fd::new(s(&[1]), 0)));
        // (b) invert AG ↛ N: A→N replaced by AB→N and AM→N.
        pc.invert(Fd::new(s(&[1, 3]), 0));
        assert!(!pc.contains(&Fd::new(s(&[1]), 0)));
        assert!(pc.contains(&Fd::new(s(&[1, 2]), 0)));
        assert!(pc.contains(&Fd::new(s(&[1, 4]), 0)));
        // (c) invert AMB ↛ N: both replaced by ABG→N and AMG→N.
        pc.invert(Fd::new(s(&[1, 4, 2]), 0));
        assert!(!pc.contains(&Fd::new(s(&[1, 2]), 0)));
        assert!(!pc.contains(&Fd::new(s(&[1, 4]), 0)));
        assert!(pc.contains(&Fd::new(s(&[1, 2, 3]), 0)));
        assert!(pc.contains(&Fd::new(s(&[1, 4, 3]), 0)));
        // Exactly those two candidates remain for RHS N.
        let n_fds: Vec<Fd> = pc.to_fdset().with_rhs(0).copied().collect();
        assert_eq!(n_fds.len(), 2);
    }

    #[test]
    fn inversion_result_is_minimal_and_consistent() {
        let mut nc = NCover::new(4);
        nc.add_agree_set(s(&[0, 1]));
        nc.add_agree_set(s(&[1, 2]));
        nc.add_agree_set(s(&[0]));
        let pc = invert_ncover(&nc);
        let fds = pc.to_fdset();
        assert!(fds.is_minimal_cover());
        // No candidate may be invalidated by a stored non-FD.
        for fd in &fds {
            assert!(!nc.invalidates(fd), "{fd:?} contradicts the negative cover");
        }
        // Every dependency not covered must be invalidated (completeness of
        // the inversion): check exhaustively over all LHS ⊆ {0..3}.
        for rhs in 0..4u16 {
            for mask in 0u32..16 {
                let lhs = AttrSet::from_attrs((0..4u16).filter(|a| mask & (1 << a) != 0));
                if lhs.contains(rhs) {
                    continue;
                }
                let fd = Fd::new(lhs, rhs);
                assert_eq!(
                    pc.covers(&fd),
                    !nc.invalidates(&fd),
                    "cover disagreement on {fd:?}"
                );
            }
        }
    }

    #[test]
    fn cancellable_inversion_with_live_token_matches_plain() {
        let mut nc = NCover::new(6);
        for mask in [0b0011u16, 0b0110, 0b1100, 0b1010, 0b10001, 0b11000] {
            nc.add_agree_set(AttrSet::from_attrs((0..6u16).filter(|a| mask & (1 << a) != 0)));
        }
        let mut plain = PCover::initialized(6);
        let mut fds = nc.to_fds();
        plain.invert_batch(&mut fds, 2);
        let mut cancellable = PCover::initialized(6);
        let mut fds2 = nc.to_fds();
        let token = crate::budget::CancelToken::new();
        let delta = cancellable.invert_batch_cancellable(&mut fds2, 2, &token);
        assert!(fds2.is_empty(), "uncancelled run drains everything");
        assert_eq!(plain.to_fdset(), cancellable.to_fdset());
        assert_eq!(plain.len(), cancellable.len());
        assert!(delta.churn() > 0);
    }

    #[test]
    fn precancelled_inversion_keeps_all_work() {
        let mut nc = NCover::new(4);
        nc.add_agree_set(s(&[0, 1]));
        nc.add_agree_set(s(&[1, 2]));
        let mut pc = PCover::initialized(4);
        let mut fds = nc.to_fds();
        let expected = fds.len();
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let delta = pc.invert_batch_cancellable(&mut fds, 1, &token);
        // Nothing was processed; every non-FD survives for a later drain and
        // the cover is untouched (still the most general candidates).
        assert_eq!(fds.len(), expected);
        assert_eq!(delta, InvertDelta::default());
        assert_eq!(pc.len(), 4);
        // Finishing the drain afterwards converges to the exact cover.
        pc.invert_batch(&mut fds, 1);
        assert_eq!(pc.to_fdset(), invert_ncover(&nc).to_fdset());
    }

    #[test]
    fn ncover_rebuild_rhs_matches_a_fresh_cover() {
        let mut nc = NCover::new(4);
        nc.add_agree_set(s(&[0, 1]));
        nc.add_agree_set(s(&[1, 2]));
        nc.add_agree_set(s(&[0]));
        // Rebuild RHS 3 from the surviving evidence {0,1} and {1,2} only
        // (evidence {0} "died"): equals a cover built from scratch.
        nc.rebuild_rhs(3, [s(&[0, 1]), s(&[1, 2])]);
        let mut oracle = NCover::new(4);
        oracle.add_agree_set(s(&[0, 1]));
        oracle.add_agree_set(s(&[1, 2]));
        assert_eq!(nc.tree(3).to_vec(), oracle.tree(3).to_vec());
        // Other RHS trees untouched; len bookkeeping consistent.
        let total: usize = (0..4).map(|a| nc.tree(a).len()).sum();
        assert_eq!(nc.len(), total);
        // Absorption still applies during a rebuild.
        nc.rebuild_rhs(3, [s(&[0]), s(&[0, 1])]);
        assert_eq!(nc.tree(3).to_vec(), vec![s(&[0, 1])]);
    }

    #[test]
    fn pcover_rebuild_rhs_revives_candidates_killed_by_dead_evidence() {
        // Agree sets {0,1} and {2} over 3 attributes. For RHS 2 the only
        // non-FD is {0,1} ↛ 2, whose inversion empties the RHS-2 tree: ∅
        // cannot specialize outside {0,1} without using attribute 2 itself.
        let mut nc = NCover::new(3);
        nc.add_agree_set(s(&[0, 1]));
        nc.add_agree_set(s(&[2]));
        let mut pc = invert_ncover(&nc);
        let before = pc.to_fdset();
        assert!(!pc.covers(&Fd::new(s(&[]), 2)));
        // The pair behind {0,1} is deleted: no surviving evidence for RHS 2.
        let revived = pc.rebuild_rhs(2, vec![]);
        assert_eq!(revived, 1, "∅ → 2 is newly a candidate");
        assert!(pc.contains(&Fd::new(s(&[]), 2)));
        assert_eq!(pc.len(), before.len() + 1);
        // Rebuilding with the original evidence restores the old cover
        // exactly and revives nothing.
        let revived = pc.rebuild_rhs(2, vec![s(&[0, 1])]);
        assert_eq!(revived, 0);
        assert_eq!(pc.to_fdset(), before);
        assert_eq!(pc.len(), before.len());
    }

    #[test]
    fn empty_ncover_inverts_to_most_general() {
        let pc = invert_ncover(&NCover::new(3));
        let fds = pc.to_fdset();
        assert_eq!(fds.len(), 3);
        for fd in &fds {
            assert!(fd.lhs.is_empty());
        }
    }
}
