//! Extended binary tree over LHS attribute sets.
//!
//! This is the cover data structure of Section IV-D (proposed originally for
//! AID-FD): one tree per RHS attribute stores the LHSs of the stored
//! FDs/non-FDs. Inner nodes split on whether an attribute is contained in an
//! LHS — sets containing the split attribute live in the `with` subtree, the
//! rest in the `without` subtree — and leaves hold one LHS each. Every inner
//! node caches the **intersection of all LHSs stored beneath it**, which
//! prunes generalization searches early: if that intersection is not a subset
//! of the queried set, no descendant can be either (every stored set is a
//! superset of the intersection).
//!
//! Nodes live in an index-based arena (`Vec<Node>` + free list) rather than
//! `Box`es: these trees sit on the inversion hot path, where pointer-chasing
//! through scattered allocations measurably hurts on the FD-dense datasets
//! (horse, plista, flight — covers of 10⁵–10⁶ entries).
//!
//! Terminology used throughout, matching the paper:
//! * a stored set `S` is a *generalization* of query `Q` iff `S ⊆ Q`
//!   (non-strict — `X ↛ A` invalidates `Y → A` for every `Y ⊆ X`);
//! * a stored set `S` is a *specialization* of query `Q` iff `S ⊇ Q`.

use crate::attrset::{AttrId, AttrSet};

type NodeId = u32;
const NIL: NodeId = u32::MAX;

#[derive(Clone, Debug)]
enum Node {
    Leaf(AttrSet),
    Inner {
        /// Split attribute: sets containing it are in `with`, others in `without`.
        attr: AttrId,
        /// Intersection of every set stored in this subtree.
        intersection: AttrSet,
        /// Child holding sets without `attr` (`NIL` if empty).
        without: NodeId,
        /// Child holding sets with `attr` (`NIL` if empty).
        with: NodeId,
    },
    /// Arena slot on the free list, pointing at the next free slot.
    Free(NodeId),
}

/// A set of LHS attribute sets with fast subset/superset queries.
///
/// ```
/// use fd_core::{AttrSet, LhsTree};
///
/// let mut tree = LhsTree::new();
/// tree.insert(AttrSet::from_attrs([1u16, 2]));
/// tree.insert(AttrSet::from_attrs([3u16]));
///
/// // {1,2} generalizes {1,2,4}; {3} does not.
/// assert!(tree.contains_subset_of(&AttrSet::from_attrs([1u16, 2, 4])));
/// // {1,2} specializes {2}.
/// assert!(tree.contains_superset_of(&AttrSet::from_attrs([2u16])));
///
/// // Stripping generalizations of {1,2,3} removes both stored sets.
/// let removed = tree.remove_subsets_of(&AttrSet::from_attrs([1u16, 2, 3]));
/// assert_eq!(removed.len(), 2);
/// assert!(tree.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct LhsTree {
    nodes: Vec<Node>,
    free: NodeId,
    root: NodeId,
    len: usize,
}

impl Default for LhsTree {
    fn default() -> Self {
        Self::new()
    }
}

impl LhsTree {
    /// An empty tree.
    pub fn new() -> Self {
        LhsTree { nodes: Vec::new(), free: NIL, root: NIL, len: 0 }
    }

    /// Number of stored LHSs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if self.free != NIL {
            let id = self.free;
            self.free = match self.nodes[id as usize] {
                Node::Free(next) => next,
                _ => unreachable!("free list points at a live node"),
            };
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeId
        }
    }

    fn release(&mut self, id: NodeId) {
        self.nodes[id as usize] = Node::Free(self.free);
        self.free = id;
    }

    fn intersection_of(&self, id: NodeId) -> AttrSet {
        match &self.nodes[id as usize] {
            Node::Leaf(s) => *s,
            Node::Inner { intersection, .. } => *intersection,
            Node::Free(_) => unreachable!("live traversal reached a free slot"),
        }
    }

    fn refresh_intersection(&mut self, id: NodeId) {
        let (without, with) = match &self.nodes[id as usize] {
            Node::Inner { without, with, .. } => (*without, *with),
            _ => return,
        };
        let inter = match (without != NIL, with != NIL) {
            (true, true) => self.intersection_of(without).intersect(&self.intersection_of(with)),
            (true, false) => self.intersection_of(without),
            (false, true) => self.intersection_of(with),
            (false, false) => AttrSet::empty(),
        };
        if let Node::Inner { intersection, .. } = &mut self.nodes[id as usize] {
            *intersection = inter;
        }
    }

    /// Inserts `lhs`; returns true if it was not already present.
    pub fn insert(&mut self, lhs: AttrSet) -> bool {
        if self.root == NIL {
            self.root = self.alloc(Node::Leaf(lhs));
            self.len = 1;
            return true;
        }
        // Descend iteratively, tracking the path for intersection refresh.
        let mut path: Vec<NodeId> = Vec::new();
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Leaf(existing) => {
                    let existing = *existing;
                    if existing == lhs {
                        return false;
                    }
                    // Split on a distinguishing attribute (smallest id in the
                    // symmetric difference); the set containing it goes right.
                    let sym = existing.difference(&lhs).union(&lhs.difference(&existing));
                    let Some(attr) = sym.first() else {
                        // Unreachable (the equality check above returned),
                        // but an equal set is simply already present.
                        return false;
                    };
                    let new_leaf = self.alloc(Node::Leaf(lhs));
                    let (with, without) =
                        if existing.contains(attr) { (cur, new_leaf) } else { (new_leaf, cur) };
                    let inner = self.alloc(Node::Inner {
                        attr,
                        intersection: existing.intersect(&lhs),
                        without,
                        with,
                    });
                    // Hook the new inner node into the parent (or the root).
                    match path.last() {
                        None => self.root = inner,
                        Some(&parent) => {
                            if let Node::Inner { without, with, .. } =
                                &mut self.nodes[parent as usize]
                            {
                                if *without == cur {
                                    *without = inner;
                                } else {
                                    *with = inner;
                                }
                            }
                        }
                    }
                    break;
                }
                Node::Inner { attr, without, with, .. } => {
                    let goes_with = lhs.contains(*attr);
                    let side = if goes_with { *with } else { *without };
                    if side == NIL {
                        let leaf = self.alloc(Node::Leaf(lhs));
                        if let Node::Inner { without, with, .. } = &mut self.nodes[cur as usize] {
                            if goes_with {
                                *with = leaf;
                            } else {
                                *without = leaf;
                            }
                        }
                        path.push(cur);
                        break;
                    }
                    path.push(cur);
                    cur = side;
                }
                Node::Free(_) => unreachable!("live traversal reached a free slot"),
            }
        }
        // Refresh cached intersections bottom-up along the path.
        for &id in path.iter().rev() {
            self.refresh_intersection(id);
        }
        self.len += 1;
        true
    }

    /// True if some stored set is a subset of `query` (a *generalization*).
    pub fn contains_subset_of(&self, query: &AttrSet) -> bool {
        self.find_subset_from(self.root, query).is_some()
    }

    /// Returns one stored subset of `query`, if any.
    pub fn find_subset_of(&self, query: &AttrSet) -> Option<AttrSet> {
        self.find_subset_from(self.root, query)
    }

    fn find_subset_from(&self, id: NodeId, query: &AttrSet) -> Option<AttrSet> {
        if id == NIL {
            return None;
        }
        match &self.nodes[id as usize] {
            Node::Leaf(s) => s.is_subset_of(query).then_some(*s),
            Node::Inner { attr, intersection, without, with } => {
                // Intersection pruning: every stored set ⊇ intersection, so a
                // stored subset of `query` forces intersection ⊆ query.
                if !intersection.is_subset_of(query) {
                    return None;
                }
                if let Some(found) = self.find_subset_from(*without, query) {
                    return Some(found);
                }
                if query.contains(*attr) {
                    return self.find_subset_from(*with, query);
                }
                None
            }
            Node::Free(_) => unreachable!("live traversal reached a free slot"),
        }
    }

    /// True if some stored set is a superset of `query` (a *specialization*).
    pub fn contains_superset_of(&self, query: &AttrSet) -> bool {
        self.contains_superset_from(self.root, query)
    }

    fn contains_superset_from(&self, id: NodeId, query: &AttrSet) -> bool {
        if id == NIL {
            return false;
        }
        match &self.nodes[id as usize] {
            Node::Leaf(s) => query.is_subset_of(s),
            Node::Inner { attr, intersection, without, with } => {
                // Shortcut: if the query is below the subtree intersection,
                // every stored set here is a superset.
                if query.is_subset_of(intersection) {
                    return true;
                }
                if self.contains_superset_from(*with, query) {
                    return true;
                }
                // Sets lacking `attr` can only cover queries lacking it.
                !query.contains(*attr) && self.contains_superset_from(*without, query)
            }
            Node::Free(_) => unreachable!("live traversal reached a free slot"),
        }
    }

    /// Collects all stored subsets of `query` without removing them.
    pub fn collect_subsets_of(&self, query: &AttrSet) -> Vec<AttrSet> {
        let mut out = Vec::new();
        self.collect_subsets_from(self.root, query, &mut out);
        out
    }

    fn collect_subsets_from(&self, id: NodeId, query: &AttrSet, out: &mut Vec<AttrSet>) {
        if id == NIL {
            return;
        }
        match &self.nodes[id as usize] {
            Node::Leaf(s) => {
                if s.is_subset_of(query) {
                    out.push(*s);
                }
            }
            Node::Inner { attr, intersection, without, with } => {
                if !intersection.is_subset_of(query) {
                    return;
                }
                self.collect_subsets_from(*without, query, out);
                if query.contains(*attr) {
                    self.collect_subsets_from(*with, query, out);
                }
            }
            Node::Free(_) => unreachable!("live traversal reached a free slot"),
        }
    }

    /// Collects all stored supersets of `query` without removing them.
    pub fn collect_supersets_of(&self, query: &AttrSet) -> Vec<AttrSet> {
        let mut out = Vec::new();
        self.collect_supersets_from(self.root, query, &mut out);
        out
    }

    fn collect_supersets_from(&self, id: NodeId, query: &AttrSet, out: &mut Vec<AttrSet>) {
        if id == NIL {
            return;
        }
        match &self.nodes[id as usize] {
            Node::Leaf(s) => {
                if query.is_subset_of(s) {
                    out.push(*s);
                }
            }
            Node::Inner { attr, without, with, .. } => {
                self.collect_supersets_from(*with, query, out);
                if !query.contains(*attr) {
                    self.collect_supersets_from(*without, query, out);
                }
            }
            Node::Free(_) => unreachable!("live traversal reached a free slot"),
        }
    }

    /// Removes every stored subset of `query` and returns them. Used by the
    /// inversion module to strip invalidated generalizations from the Pcover
    /// and by the Ncover to keep only maximal non-FDs.
    pub fn remove_subsets_of(&mut self, query: &AttrSet) -> Vec<AttrSet> {
        let mut removed = Vec::new();
        self.root = self.remove_subsets_from(self.root, query, &mut removed);
        self.len -= removed.len();
        removed
    }

    fn remove_subsets_from(
        &mut self,
        id: NodeId,
        query: &AttrSet,
        removed: &mut Vec<AttrSet>,
    ) -> NodeId {
        if id == NIL {
            return NIL;
        }
        match &self.nodes[id as usize] {
            Node::Leaf(s) => {
                if s.is_subset_of(query) {
                    removed.push(*s);
                    self.release(id);
                    NIL
                } else {
                    id
                }
            }
            Node::Inner { attr, intersection, without, with } => {
                if !intersection.is_subset_of(query) {
                    return id;
                }
                let (attr, without, with) = (*attr, *without, *with);
                let new_without = self.remove_subsets_from(without, query, removed);
                let new_with = if query.contains(attr) {
                    self.remove_subsets_from(with, query, removed)
                } else {
                    with
                };
                self.update_children(id, new_without, new_with)
            }
            Node::Free(_) => unreachable!("live traversal reached a free slot"),
        }
    }

    /// Removes the exact set `lhs`; returns true if it was present.
    pub fn remove(&mut self, lhs: &AttrSet) -> bool {
        let mut removed = false;
        self.root = self.remove_exact_from(self.root, lhs, &mut removed);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_exact_from(&mut self, id: NodeId, lhs: &AttrSet, removed: &mut bool) -> NodeId {
        if id == NIL {
            return NIL;
        }
        match &self.nodes[id as usize] {
            Node::Leaf(s) => {
                if s == lhs {
                    *removed = true;
                    self.release(id);
                    NIL
                } else {
                    id
                }
            }
            Node::Inner { attr, without, with, .. } => {
                let (attr, without, with) = (*attr, *without, *with);
                let (new_without, new_with) = if lhs.contains(attr) {
                    (without, self.remove_exact_from(with, lhs, removed))
                } else {
                    (self.remove_exact_from(without, lhs, removed), with)
                };
                if *removed {
                    self.update_children(id, new_without, new_with)
                } else {
                    id
                }
            }
            Node::Free(_) => unreachable!("live traversal reached a free slot"),
        }
    }

    /// Rewrites an inner node's children after removals: drops it if empty,
    /// replaces it by its single child, or refreshes its intersection.
    fn update_children(&mut self, id: NodeId, new_without: NodeId, new_with: NodeId) -> NodeId {
        match (new_without != NIL, new_with != NIL) {
            (false, false) => {
                self.release(id);
                NIL
            }
            (true, false) => {
                self.release(id);
                new_without
            }
            (false, true) => {
                self.release(id);
                new_with
            }
            (true, true) => {
                if let Node::Inner { without, with, .. } = &mut self.nodes[id as usize] {
                    *without = new_without;
                    *with = new_with;
                }
                self.refresh_intersection(id);
                id
            }
        }
    }

    /// Invokes `f` on every stored set (unspecified order).
    pub fn for_each<F: FnMut(AttrSet)>(&self, mut f: F) {
        self.for_each_from(self.root, &mut f);
    }

    fn for_each_from<F: FnMut(AttrSet)>(&self, id: NodeId, f: &mut F) {
        if id == NIL {
            return;
        }
        match &self.nodes[id as usize] {
            Node::Leaf(s) => f(*s),
            Node::Inner { without, with, .. } => {
                self.for_each_from(*without, f);
                self.for_each_from(*with, f);
            }
            Node::Free(_) => unreachable!("live traversal reached a free slot"),
        }
    }

    /// All stored sets as a vector (unspecified order).
    pub fn to_vec(&self) -> Vec<AttrSet> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each(|s| v.push(s));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bits: &[u16]) -> AttrSet {
        AttrSet::from_attrs(bits.iter().copied())
    }

    /// Replays the paper's Figure 4 construction for RHS `N`:
    /// non-FDs AMB, MBG, BG, AG (attribute ids: N=0, A=1, B=2, G=3, M=4).
    #[test]
    fn figure_4_ncover_construction() {
        let amb = s(&[1, 4, 2]);
        let mbg = s(&[4, 2, 3]);
        let bg = s(&[2, 3]);
        let ag = s(&[1, 3]);

        let mut tree = LhsTree::new();
        assert!(tree.insert(amb)); // Fig 4(a)
        assert!(tree.insert(mbg)); // Fig 4(b)
        // BG is specialized by MBG, so Algorithm 2 discards it.
        assert!(tree.contains_superset_of(&bg));
        // AG has no specialization stored; add it (Fig 4(c)).
        assert!(!tree.contains_superset_of(&ag));
        assert!(tree.insert(ag));
        assert_eq!(tree.len(), 3);

        let mut all = tree.to_vec();
        all.sort();
        let mut expect = vec![amb, mbg, ag];
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn insert_dedupes() {
        let mut tree = LhsTree::new();
        assert!(tree.insert(s(&[1, 2])));
        assert!(!tree.insert(s(&[1, 2])));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn subset_queries_are_non_strict() {
        let mut tree = LhsTree::new();
        tree.insert(s(&[1, 2]));
        assert!(tree.contains_subset_of(&s(&[1, 2])));
        assert!(tree.contains_superset_of(&s(&[1, 2])));
        assert!(tree.contains_subset_of(&s(&[1, 2, 3])));
        assert!(!tree.contains_subset_of(&s(&[1, 3])));
        assert!(tree.contains_superset_of(&s(&[2])));
        assert!(!tree.contains_superset_of(&s(&[2, 3])));
    }

    #[test]
    fn empty_set_is_subset_of_everything() {
        let mut tree = LhsTree::new();
        tree.insert(AttrSet::empty());
        assert!(tree.contains_subset_of(&s(&[9])));
        assert!(tree.contains_subset_of(&AttrSet::empty()));
        assert!(tree.contains_superset_of(&AttrSet::empty()));
        assert!(!tree.contains_superset_of(&s(&[9])));
    }

    #[test]
    fn remove_subsets_strips_generalizations() {
        let mut tree = LhsTree::new();
        for lhs in [s(&[1]), s(&[1, 2]), s(&[3]), s(&[2, 4])] {
            tree.insert(lhs);
        }
        let mut removed = tree.remove_subsets_of(&s(&[1, 2, 3]));
        removed.sort();
        let mut expected = vec![s(&[1]), s(&[3]), s(&[1, 2])];
        expected.sort();
        assert_eq!(removed, expected);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.to_vec(), vec![s(&[2, 4])]);
    }

    #[test]
    fn remove_exact_collapses_tree() {
        let mut tree = LhsTree::new();
        tree.insert(s(&[1]));
        tree.insert(s(&[2]));
        tree.insert(s(&[1, 3]));
        assert!(tree.remove(&s(&[2])));
        assert!(!tree.remove(&s(&[2])));
        assert_eq!(tree.len(), 2);
        assert!(tree.contains_subset_of(&s(&[1])));
        assert!(tree.contains_subset_of(&s(&[1, 3])));
        assert!(tree.remove(&s(&[1])));
        assert!(tree.remove(&s(&[1, 3])));
        assert!(tree.is_empty());
        // A drained tree accepts new inserts.
        assert!(tree.insert(s(&[5])));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn collect_supersets_finds_all_specializations() {
        let mut tree = LhsTree::new();
        for lhs in [s(&[1, 2]), s(&[1, 2, 3]), s(&[2, 3]), s(&[4])] {
            tree.insert(lhs);
        }
        let mut sup = tree.collect_supersets_of(&s(&[2]));
        sup.sort();
        assert_eq!(sup.len(), 3);
        assert!(sup.contains(&s(&[1, 2])) && sup.contains(&s(&[1, 2, 3])) && sup.contains(&s(&[2, 3])));
    }
}
