//! Budgeted anytime execution: run budgets, cooperative cancellation, and
//! termination reasons.
//!
//! EulerFD's double cycle is naturally *anytime* — the positive cover is a
//! valid approximate answer at every cycle boundary — and the lattice and
//! agree-set baselines can likewise stop at a level or RHS boundary and
//! return everything validated so far. This module provides the shared
//! substrate all of them cooperate through:
//!
//! * [`Budget`] — a wall-clock deadline plus resource caps (sampled-pair
//!   count, cover/lattice node count), polled at cheap boundaries;
//! * [`CancelToken`] — an atomic flag with a first-wins [`Termination`]
//!   reason, flipped by watchdogs or external callers and observed by
//!   workers between work items;
//! * [`Termination`] — why a run stopped, distinguishing a full answer from
//!   every flavour of truncation;
//! * [`Watchdog`] — a helper thread that cancels a token when a deadline
//!   passes, for guarding code that polls the token but not the clock.
//!
//! The contract every cooperating algorithm upholds: a run under
//! [`Budget::unlimited`] behaves **bit-for-bit identically** to the
//! unbudgeted code path (polling an unlimited budget is a single relaxed
//! atomic load), and a tripped budget still returns a sound, minimal,
//! non-trivial partial result together with the [`Termination`] that ended
//! the run.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a discovery run stopped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Termination {
    /// The algorithm ran to its natural fixpoint; the result is the full
    /// answer the unbudgeted run would have produced.
    #[default]
    Converged,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The sampled/compared tuple-pair cap was reached.
    PairBudget,
    /// The cover/lattice node cap was reached (models a memory limit).
    MemoryBudget,
    /// An external caller cancelled the run.
    Cancelled,
    /// The run died in a panic that the harness isolated.
    Panicked,
}

impl Termination {
    /// True when the run was cut short — the result is a partial answer.
    pub fn is_partial(&self) -> bool {
        !matches!(self, Termination::Converged)
    }

    /// Short stable label, used in report tables and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            Termination::Converged => "converged",
            Termination::DeadlineExceeded => "deadline",
            Termination::PairBudget => "pair-budget",
            Termination::MemoryBudget => "memory-budget",
            Termination::Cancelled => "cancelled",
            Termination::Panicked => "panicked",
        }
    }

    fn code(self) -> u8 {
        match self {
            Termination::Converged => 0, // never stored in a token
            Termination::DeadlineExceeded => 1,
            Termination::PairBudget => 2,
            Termination::MemoryBudget => 3,
            Termination::Cancelled => 4,
            Termination::Panicked => 5,
        }
    }

    fn from_code(code: u8) -> Option<Termination> {
        match code {
            1 => Some(Termination::DeadlineExceeded),
            2 => Some(Termination::PairBudget),
            3 => Some(Termination::MemoryBudget),
            4 => Some(Termination::Cancelled),
            5 => Some(Termination::Panicked),
            _ => None,
        }
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    /// First-wins termination reason, stored *before* the flag is raised so
    /// an observer that sees the flag also sees a reason.
    reason: AtomicU8,
}

/// A cooperative cancellation token. Cloning shares the underlying flag, so
/// a watchdog (or the serving layer) holds one clone while the worker polls
/// another. Checking costs one relaxed atomic load.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation with the generic [`Termination::Cancelled`]
    /// reason. Idempotent; the first reason to arrive wins.
    pub fn cancel(&self) {
        self.cancel_with(Termination::Cancelled);
    }

    /// Requests cancellation with an explicit reason. Idempotent; the first
    /// reason to arrive wins (a deadline watchdog racing an external cancel
    /// reports whichever flipped the token first).
    pub fn cancel_with(&self, reason: Termination) {
        let code = reason.code();
        if code == 0 {
            return; // Converged is not a cancellation reason
        }
        // Publish the reason before the flag: Release on the flag store
        // pairs with Acquire in `reason()`.
        let _ = self.inner.reason.compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once any party has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The termination reason, if cancelled.
    pub fn reason(&self) -> Option<Termination> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            Termination::from_code(self.inner.reason.load(Ordering::Relaxed))
                .or(Some(Termination::Cancelled))
        } else {
            None
        }
    }
}

/// A run budget: an optional wall-clock deadline and optional resource caps,
/// plus the [`CancelToken`] the run and its guardians share.
///
/// Cooperating code calls [`Budget::poll`] at cheap boundaries (a sampling
/// batch, a lattice level, an inversion shard). The first trip cancels the
/// shared token, so sibling workers observe it on their next check even if
/// they never consult the clock or the counters themselves.
///
/// Cloning shares the token but copies the limits.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_pairs: Option<u64>,
    max_cover_nodes: Option<usize>,
    token: CancelToken,
}

impl Budget {
    /// No limits at all: [`Budget::poll`] returns `None` forever (unless the
    /// token is cancelled externally) and budgeted code paths behave
    /// bit-for-bit like their unbudgeted originals.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget whose deadline is `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Budget { deadline: Some(Instant::now() + timeout), ..Self::default() }
    }

    /// Builder: cap the number of tuple pairs sampled/compared.
    pub fn pair_cap(mut self, max_pairs: u64) -> Self {
        self.max_pairs = Some(max_pairs);
        self
    }

    /// Builder: cap the number of cover/lattice nodes held live (the
    /// workspace's proxy for a memory limit).
    pub fn cover_cap(mut self, max_cover_nodes: usize) -> Self {
        self.max_cover_nodes = Some(max_cover_nodes);
        self
    }

    /// Builder: set the deadline to `timeout` from now.
    pub fn deadline_in(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Builder: replace the budget's token with an existing one, sharing
    /// cancellation with whoever else holds a clone (e.g. a serving layer's
    /// per-job cancel handle). Used together with [`Budget::share`], which
    /// deliberately hands each share a fresh token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = token;
        self
    }

    /// Splits off one of `parts` equal shares of this budget, for fair
    /// apportionment of a tenant-level budget across concurrent jobs:
    ///
    /// * resource caps (pairs, cover nodes) are divided by `parts`,
    ///   rounding up so no share is zeroed by integer division;
    /// * the absolute deadline is kept as-is — wall-clock is a shared axis,
    ///   and every share racing the same instant is exactly the fairness a
    ///   deadline expresses;
    /// * the share gets a **fresh** token, so one job tripping (or being
    ///   cancelled) never cancels its siblings. Attach a job's own cancel
    ///   handle with [`Budget::with_token`].
    ///
    /// `parts` is clamped to at least 1.
    pub fn share(&self, parts: usize) -> Budget {
        let parts = parts.max(1);
        Budget {
            deadline: self.deadline,
            max_pairs: self.max_pairs.map(|cap| cap.div_ceil(parts as u64)),
            max_cover_nodes: self.max_cover_nodes.map(|cap| cap.div_ceil(parts)),
            token: CancelToken::new(),
        }
    }

    /// The shared cancellation token.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// True when no deadline and no cap is configured. (The token can still
    /// be cancelled externally.)
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_pairs.is_none() && self.max_cover_nodes.is_none()
    }

    /// Checks the budget against the run's progress counters. Returns the
    /// [`Termination`] reason on the first violation and `None` while the
    /// run may continue. A trip cancels the shared token, so every sibling
    /// worker polling only the token stops too.
    ///
    /// Check order: token (one atomic load — the common case for unlimited
    /// budgets), then the caps, then the clock.
    pub fn poll(&self, pairs: u64, cover_nodes: usize) -> Option<Termination> {
        fd_telemetry::counter!("budget.polls", 1);
        if let Some(reason) = self.token.reason() {
            return Some(reason);
        }
        if let Some(cap) = self.max_pairs {
            if pairs > cap {
                return Some(self.trip(Termination::PairBudget));
            }
        }
        if let Some(cap) = self.max_cover_nodes {
            if cover_nodes > cap {
                return Some(self.trip(Termination::MemoryBudget));
            }
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                // Trip latency: how far past the deadline the poll that
                // noticed it actually ran — the observability signal for
                // whether POLL_STRIDE is tight enough.
                fd_telemetry::observe!(
                    "budget.trip_latency_ns",
                    u64::try_from((now - deadline).as_nanos()).unwrap_or(u64::MAX)
                );
                return Some(self.trip(Termination::DeadlineExceeded));
            }
        }
        None
    }

    /// [`Budget::poll`] for loops that track no counters (lattice levels,
    /// DFS nodes): checks only the token and the clock.
    pub fn poll_time(&self) -> Option<Termination> {
        self.poll(0, 0)
    }

    fn trip(&self, reason: Termination) -> Termination {
        if fd_telemetry::is_enabled() {
            // Trips are rare (at most one per run per budget clone), so the
            // dynamic-name slow path is fine here.
            fd_telemetry::registry()
                .counter_add_by_name(&format!("budget.trip.{}", reason.as_str()), 1);
        }
        self.token.cancel_with(reason);
        // First reason wins even under a race with an external cancel.
        self.token.reason().unwrap_or(reason)
    }
}

/// A deadline watchdog: a helper thread that cancels a [`CancelToken`] with
/// [`Termination::DeadlineExceeded`] once the deadline passes, unless
/// disarmed first. Guards code that polls the token frequently but should
/// not pay for `Instant::now()` in its hot loop — and, armed by the bench
/// runner, bounds algorithms whose budget polls are sparse.
///
/// # Drop semantics
///
/// Dropping an armed watchdog — with or without calling
/// [`Watchdog::disarm`] first — disarms it: the helper thread is woken,
/// joined, and the token is left untouched if the deadline has not yet
/// passed. A guard going out of scope early (a panic unwinding through the
/// bench runner, an early return) therefore never fires a spurious
/// cancellation into a token that outlives it. The only asymmetry with an
/// explicit `disarm()` is lost-race timing: if the deadline elapses in the
/// instant before the drop takes the state lock, the cancellation stands —
/// exactly as it would for `disarm()`.
#[derive(Debug)]
pub struct Watchdog {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Arms a watchdog that cancels `token` after `timeout`.
    pub fn arm(token: CancelToken, timeout: Duration) -> Self {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let deadline = Instant::now() + timeout;
        let handle = std::thread::spawn(move || {
            let (lock, condvar) = &*thread_state;
            let mut disarmed = lock.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if *disarmed {
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    fd_telemetry::observe!(
                        "budget.watchdog_fire_latency_ns",
                        u64::try_from((now - deadline).as_nanos()).unwrap_or(u64::MAX)
                    );
                    token.cancel_with(Termination::DeadlineExceeded);
                    return;
                }
                let (guard, _) = condvar
                    .wait_timeout(disarmed, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                disarmed = guard;
            }
        });
        Watchdog { state, handle: Some(handle) }
    }

    /// Disarms the watchdog and joins the helper thread. If the deadline
    /// already passed, the token stays cancelled.
    pub fn disarm(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (lock, condvar) = &*self.state;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            condvar.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.poll(u64::MAX, usize::MAX), None);
        assert_eq!(b.poll_time(), None);
    }

    #[test]
    fn pair_cap_trips_and_cancels_the_token() {
        let b = Budget::unlimited().pair_cap(100);
        assert_eq!(b.poll(100, 0), None);
        assert_eq!(b.poll(101, 0), Some(Termination::PairBudget));
        // The trip is sticky via the token.
        assert!(b.token().is_cancelled());
        assert_eq!(b.poll(0, 0), Some(Termination::PairBudget));
    }

    #[test]
    fn share_divides_caps_and_isolates_tokens() {
        let b = Budget::unlimited().pair_cap(100).cover_cap(7);
        let s = b.share(4);
        assert_eq!(s.poll(25, 0), None);
        assert_eq!(s.poll(26, 0), Some(Termination::PairBudget));
        // cover cap 7 over 4 parts rounds up to 2, never to zero.
        let s2 = b.share(4);
        assert_eq!(s2.poll(0, 2), None);
        assert_eq!(s2.poll(0, 3), Some(Termination::MemoryBudget));
        // One share's trip must not leak into the parent or a sibling.
        assert!(!b.token().is_cancelled());
        let s3 = b.share(4);
        assert_eq!(s3.poll(0, 0), None);
        // parts = 0 clamps to one whole share.
        let whole = b.share(0);
        assert_eq!(whole.poll(100, 7), None);
        // Sharing an unlimited budget stays unlimited.
        assert!(Budget::unlimited().share(8).is_unlimited());
    }

    #[test]
    fn with_token_shares_external_cancellation() {
        let token = CancelToken::new();
        let b = Budget::unlimited().pair_cap(10).share(2).with_token(token.clone());
        assert_eq!(b.poll(0, 0), None);
        token.cancel();
        assert_eq!(b.poll(0, 0), Some(Termination::Cancelled));
    }

    #[test]
    fn cover_cap_trips_as_memory_budget() {
        let b = Budget::unlimited().cover_cap(10);
        assert_eq!(b.poll(0, 10), None);
        assert_eq!(b.poll(0, 11), Some(Termination::MemoryBudget));
    }

    #[test]
    fn deadline_trips() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.poll_time(), Some(Termination::DeadlineExceeded));
    }

    #[test]
    fn first_cancellation_reason_wins() {
        let t = CancelToken::new();
        assert_eq!(t.reason(), None);
        t.cancel_with(Termination::DeadlineExceeded);
        t.cancel_with(Termination::Cancelled);
        assert_eq!(t.reason(), Some(Termination::DeadlineExceeded));
        assert!(t.is_cancelled());
    }

    #[test]
    fn converged_is_not_a_cancellation() {
        let t = CancelToken::new();
        t.cancel_with(Termination::Converged);
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn clones_share_the_token() {
        let b = Budget::unlimited();
        let clone = b.clone();
        clone.token().cancel();
        assert_eq!(b.poll(0, 0), Some(Termination::Cancelled));
    }

    #[test]
    fn watchdog_fires_after_the_deadline() {
        let token = CancelToken::new();
        let _w = Watchdog::arm(token.clone(), Duration::from_millis(5));
        let start = Instant::now();
        while !token.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(5), "watchdog never fired");
            std::thread::yield_now();
        }
        assert_eq!(token.reason(), Some(Termination::DeadlineExceeded));
    }

    #[test]
    fn disarmed_watchdog_leaves_the_token_alone() {
        let token = CancelToken::new();
        let w = Watchdog::arm(token.clone(), Duration::from_secs(60));
        w.disarm();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn dropping_an_armed_watchdog_does_not_fire_spuriously() {
        // Drop without disarm(): the Drop impl must behave exactly like
        // disarm() — join the helper and leave the token untouched when the
        // deadline has not passed (see the struct's "Drop semantics" doc).
        let token = CancelToken::new();
        {
            let _w = Watchdog::arm(token.clone(), Duration::from_secs(60));
            // _w dropped here, 60s before its deadline.
        }
        assert!(!token.is_cancelled(), "drop of an armed watchdog cancelled the token");
        assert_eq!(token.reason(), None);
        // And the token still works normally afterwards.
        token.cancel_with(Termination::Cancelled);
        assert_eq!(token.reason(), Some(Termination::Cancelled));
    }

    #[test]
    fn concurrent_cancellations_pick_exactly_one_reason() {
        // First-writer-wins under a real race: many threads cancel with
        // different reasons; whichever lands first is the reason every
        // observer sees, forever. A later cancel_with must never overwrite
        // a reason already observed through reason().
        let reasons = [
            Termination::DeadlineExceeded,
            Termination::PairBudget,
            Termination::MemoryBudget,
            Termination::Cancelled,
        ];
        for _ in 0..32 {
            let token = CancelToken::new();
            let first_seen = std::thread::scope(|s| {
                let handles: Vec<_> = reasons
                    .iter()
                    .map(|&r| {
                        let token = token.clone();
                        s.spawn(move || {
                            token.cancel_with(r);
                            token.reason().expect("cancelled token must carry a reason")
                        })
                    })
                    .collect();
                let seen: Vec<Termination> =
                    handles.into_iter().map(|h| h.join().expect("no panics")).collect();
                seen
            });
            // Every thread observed the same winning reason, including the
            // threads whose own cancel_with lost the race.
            let winner = first_seen[0];
            assert!(reasons.contains(&winner));
            assert!(first_seen.iter().all(|&r| r == winner), "observers disagree: {first_seen:?}");
            // And it is sticky against late overwrites.
            for &r in &reasons {
                token.cancel_with(r);
            }
            assert_eq!(token.reason(), Some(winner));
        }
    }

    #[test]
    fn termination_labels_are_stable() {
        assert_eq!(Termination::Converged.to_string(), "converged");
        assert_eq!(Termination::DeadlineExceeded.to_string(), "deadline");
        assert!(!Termination::Converged.is_partial());
        assert!(Termination::PairBudget.is_partial());
    }
}
