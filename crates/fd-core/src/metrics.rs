//! Accuracy metrics for approximate FD discovery.
//!
//! The paper scores approximate results against the exact target positive
//! cover with the F1 measure [33]: precision = |found ∩ truth| / |found|,
//! recall = |found ∩ truth| / |truth|, F1 = harmonic mean. Matching is exact
//! on (LHS, RHS) pairs, i.e. a specialization of a true minimal FD counts as
//! both a false positive and a missed true FD, just like in the paper's
//! benchmark tooling.

use crate::fd::FdSet;

/// Precision / recall / F1 of a discovered FD set against ground truth.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Accuracy {
    /// |found ∩ truth| / |found|; 1.0 when nothing was found and truth is empty.
    pub precision: f64,
    /// |found ∩ truth| / |truth|; 1.0 when truth is empty.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of exactly matching FDs.
    pub true_positives: usize,
    /// FDs reported but not in the ground truth.
    pub false_positives: usize,
    /// Ground-truth FDs not reported.
    pub false_negatives: usize,
}

impl Accuracy {
    /// Scores `found` against `truth`.
    pub fn of(found: &FdSet, truth: &FdSet) -> Accuracy {
        let tp = found.iter().filter(|fd| truth.contains(fd)).count();
        let fp = found.len() - tp;
        let fnn = truth.len() - tp;
        let precision = if found.is_empty() {
            if truth.is_empty() { 1.0 } else { 0.0 }
        } else {
            tp as f64 / found.len() as f64
        };
        let recall = if truth.is_empty() { 1.0 } else { tp as f64 / truth.len() as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Accuracy {
            precision,
            recall,
            f1,
            true_positives: tp,
            false_positives: fp,
            false_negatives: fnn,
        }
    }

    /// True if every FD matched in both directions.
    pub fn is_perfect(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrset::AttrSet;
    use crate::fd::Fd;

    fn fd(lhs: &[u16], rhs: u16) -> Fd {
        Fd::new(AttrSet::from_attrs(lhs.iter().copied()), rhs)
    }

    #[test]
    fn perfect_match_scores_one() {
        let truth: FdSet = [fd(&[0], 1), fd(&[2], 3)].into_iter().collect();
        let acc = Accuracy::of(&truth.clone(), &truth);
        assert_eq!(acc.f1, 1.0);
        assert!(acc.is_perfect());
        assert_eq!(acc.true_positives, 2);
    }

    #[test]
    fn partial_match_scores_harmonic_mean() {
        let truth: FdSet = [fd(&[0], 1), fd(&[2], 3)].into_iter().collect();
        let found: FdSet = [fd(&[0], 1), fd(&[4], 3)].into_iter().collect();
        let acc = Accuracy::of(&found, &truth);
        assert_eq!(acc.true_positives, 1);
        assert_eq!(acc.false_positives, 1);
        assert_eq!(acc.false_negatives, 1);
        assert!((acc.precision - 0.5).abs() < 1e-12);
        assert!((acc.recall - 0.5).abs() < 1e-12);
        assert!((acc.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn specialization_of_true_fd_is_not_a_match() {
        let truth: FdSet = [fd(&[0], 1)].into_iter().collect();
        let found: FdSet = [fd(&[0, 2], 1)].into_iter().collect();
        let acc = Accuracy::of(&found, &truth);
        assert_eq!(acc.true_positives, 0);
        assert_eq!(acc.f1, 0.0);
    }

    #[test]
    fn empty_edge_cases() {
        let empty = FdSet::new();
        let some: FdSet = [fd(&[0], 1)].into_iter().collect();
        assert_eq!(Accuracy::of(&empty, &empty).f1, 1.0);
        assert_eq!(Accuracy::of(&empty, &some).f1, 0.0);
        let acc = Accuracy::of(&some, &empty);
        assert_eq!(acc.precision, 0.0);
        assert_eq!(acc.recall, 1.0);
        assert_eq!(acc.f1, 0.0);
    }
}
