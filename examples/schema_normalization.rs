//! Schema normalization — another of the paper's motivating applications
//! (Section I): use discovered FDs to find candidate keys and flag BCNF
//! violations, the backbone of data-driven schema normalization [27].
//!
//! ```text
//! cargo run --example schema_normalization
//! ```

use eulerfd::EulerFd;
use fd_core::{bcnf_violations, candidate_keys};
use fd_relation::synth::{ColumnKind, ColumnSpec, Generator};
use fd_relation::FdAlgorithm;

fn main() {
    // A denormalized orders table: order_id is the key, but customer data
    // (name, city, zip) depends on customer_id alone, and city depends on
    // zip — textbook BCNF violations.
    let generator = Generator::new(
        "orders-denormalized",
        vec![
            ColumnSpec::new("order_id", ColumnKind::Key),
            ColumnSpec::new("customer_id", ColumnKind::Categorical { cardinality: 120, skew: 0.3 }),
            ColumnSpec::new(
                "customer_name",
                ColumnKind::Derived { parents: vec![1], cardinality: 120, noise: 0.0 },
            ),
            ColumnSpec::new(
                "zip",
                ColumnKind::Derived { parents: vec![1], cardinality: 40, noise: 0.0 },
            ),
            ColumnSpec::new(
                "city",
                ColumnKind::Derived { parents: vec![3], cardinality: 15, noise: 0.0 },
            ),
            ColumnSpec::new("amount", ColumnKind::Categorical { cardinality: 500, skew: 0.1 }),
        ],
        7,
    );
    let relation = generator.generate(3000);
    let schema = relation.column_names().to_vec();

    let fds = EulerFd::new().discover(&relation);
    println!("discovered {} FDs on `{}`:", fds.len(), relation.name());
    for fd in &fds {
        println!("  {}", fd.display(&schema));
    }

    // Candidate keys: minimal attribute sets whose closure under the FDs is
    // the whole schema.
    let keys = candidate_keys(relation.n_attrs(), &fds);
    println!("\ncandidate keys:");
    for key in &keys {
        println!("  {}", key.display(&schema));
    }

    // BCNF check: every non-trivial FD X → A must have X a superkey.
    let violations = bcnf_violations(relation.n_attrs(), &fds);
    println!("\nBCNF violations (determinant is not a key):");
    for fd in &violations {
        println!(
            "  {}   (suggest extracting relation {} ∪ {{{}}})",
            fd.display(&schema),
            fd.lhs.display(&schema),
            schema[fd.rhs as usize]
        );
    }
    println!(
        "\n{} violations — the table is {}in BCNF",
        violations.len(),
        if violations.is_empty() { "" } else { "NOT " }
    );
    assert!(!violations.is_empty(), "the planted denormalization must be detected");
}
