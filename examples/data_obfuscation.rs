//! Data obfuscation on DMS — the paper's production use case (Section I).
//!
//! DMS protects sensitive attributes in three steps: experts label sensitive
//! attributes; FD discovery finds *underlying* sensitive attributes (those
//! that uniquely determine a labeled one); both sets are then obfuscated.
//! This example reproduces that pipeline on a synthetic patient-records
//! table: `age` and `gender` are labeled sensitive, and EulerFD surfaces the
//! columns that would leak them through dependencies.
//!
//! ```text
//! cargo run --example data_obfuscation
//! ```

use eulerfd::EulerFd;
use fd_core::{AttrId, AttrSet};
use fd_relation::synth::{ColumnKind, ColumnSpec, Generator};
use fd_relation::FdAlgorithm;
use std::collections::BTreeSet;

fn main() {
    // A hospital-records table: birth_code determines age exactly, and the
    // (title, insurance_class) pair determines gender with high fidelity —
    // the kind of indirect leak DMS hunts for.
    let generator = Generator::new(
        "hospital-records",
        vec![
            ColumnSpec::new("patient_id", ColumnKind::Key),
            ColumnSpec::new("age", ColumnKind::Categorical { cardinality: 60, skew: 0.2 }),
            ColumnSpec::new("gender", ColumnKind::Categorical { cardinality: 3, skew: 0.4 }),
            ColumnSpec::new(
                "birth_code",
                ColumnKind::Derived { parents: vec![1], cardinality: 60, noise: 0.0 },
            ),
            ColumnSpec::new(
                "title",
                ColumnKind::Derived { parents: vec![2], cardinality: 4, noise: 0.0 },
            ),
            ColumnSpec::new("ward", ColumnKind::Categorical { cardinality: 12, skew: 0.5 }),
            ColumnSpec::new(
                "insurance_class",
                ColumnKind::Derived { parents: vec![2, 5], cardinality: 8, noise: 0.0 },
            ),
            ColumnSpec::new("visit_day", ColumnKind::Categorical { cardinality: 365, skew: 0.1 }),
        ],
        2024,
    );
    let relation = generator.generate(5000);
    let schema = relation.column_names().to_vec();

    // Step 1: experts label the sensitive attributes.
    let sensitive: Vec<AttrId> = vec![1 /* age */, 2 /* gender */];
    println!("labeled sensitive attributes:");
    for &a in &sensitive {
        println!("  {}", schema[a as usize]);
    }

    // Step 2: discover FDs and collect the attributes that determine any
    // sensitive attribute — the underlying sensitive attributes. Key-like
    // determinants (here: patient_id) are excluded: identifiers determine
    // everything and are handled by their own masking policy.
    let fds = EulerFd::new().discover(&relation);
    let key_like: AttrSet = (0..relation.n_attrs() as AttrId)
        .filter(|&a| relation.n_distinct(a) == relation.n_rows())
        .collect();
    let mut underlying: BTreeSet<AttrId> = BTreeSet::new();
    println!("\ndependencies that leak sensitive values:");
    for fd in &fds {
        if sensitive.contains(&fd.rhs)
            && !fd.lhs.is_empty()
            && fd.lhs.intersect(&key_like).is_empty()
        {
            println!("  {}", fd.display(&schema));
            underlying.extend(fd.lhs.iter().filter(|a| !sensitive.contains(a)));
        }
    }

    println!("\nunderlying sensitive attributes (step 2 output):");
    for a in &underlying {
        println!("  {}", schema[*a as usize]);
    }

    // Step 3: the obfuscation plan covers both sets.
    println!("\nobfuscation plan (step 3):");
    for a in sensitive.iter().chain(underlying.iter()) {
        println!("  mask/tokenize column `{}`", schema[*a as usize]);
    }

    // The planted leaks must be found: birth_code → age.
    assert!(
        underlying.contains(&3),
        "birth_code determines age and must be flagged as underlying-sensitive"
    );
}
