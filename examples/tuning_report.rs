//! Tuning walkthrough: how the double cycle's knobs move runtime and
//! accuracy, read off EulerFD's run report — the workflow Section V-F's
//! threshold study automates.
//!
//! ```text
//! cargo run --release --example tuning_report [dataset] [rows]
//! ```

use eulerfd::{EulerFd, EulerFdConfig};
use fd_baselines::HyFd;
use fd_core::Accuracy;
use fd_relation::synth::dataset_spec;
use fd_relation::FdAlgorithm;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "abalone".to_string());
    let rows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3000);
    let spec = dataset_spec(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name}");
        std::process::exit(2);
    });
    let relation = spec.generate(rows);
    println!("{}: {} rows x {} cols", name, relation.n_rows(), relation.n_attrs());

    // Exact reference for scoring.
    let truth = HyFd::default().discover(&relation);
    println!("exact cover: {} FDs\n", truth.len());

    println!(
        "{:>8} {:>8}   {:>9} {:>7} {:>10} {:>7} {:>9}",
        "ThNcover", "ThPcover", "time[ms]", "F1", "pairs", "cycles", "ncover"
    );
    for (th_n, th_p) in [
        (0.1, 0.1),
        (0.1, 0.01),
        (0.01, 0.1),
        (0.01, 0.01), // the paper's default
        (0.001, 0.001),
        (0.0, 0.0), // exact limit
    ] {
        let algo = EulerFd::with_config(EulerFdConfig::with_thresholds(th_n, th_p));
        let start = Instant::now();
        let (fds, report) = algo.discover_with_report(&relation);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let f1 = Accuracy::of(&fds, &truth).f1;
        println!(
            "{th_n:>8} {th_p:>8}   {ms:>9.2} {f1:>7.3} {:>10} {:>7} {:>9}",
            report.sampler.pairs_compared,
            report.inversions,
            report.ncover_size,
        );
    }

    // Show the growth-rate traces of the default configuration: the two
    // cycles' stopping signals.
    let (_, report) = EulerFd::new().discover_with_report(&relation);
    let fmt = |v: &[f64]| {
        v.iter().map(|g| format!("{g:.4}")).collect::<Vec<_>>().join("  ")
    };
    println!("\ndefault run cycle traces:");
    println!("  GR_Ncover per sampling phase : {}", fmt(&report.gr_ncover));
    println!("  GR_Pcover per inversion      : {}", fmt(&report.gr_pcover));
    println!(
        "  clusters: {} total, {} retire events, {} revived",
        report.sampler.clusters_total, report.sampler.clusters_retired, report.sampler.revivals
    );
}
