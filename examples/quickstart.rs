//! Quickstart: discover the functional dependencies of the paper's running
//! example (the patient dataset of Table I) with EulerFD.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use eulerfd::EulerFd;
use fd_relation::{synth, verify_fds};

fn main() {
    // Table I: nine patients, five attributes.
    let relation = synth::patient();
    println!(
        "dataset: {} ({} rows x {} attributes)",
        relation.name(),
        relation.n_rows(),
        relation.n_attrs()
    );

    // Run EulerFD with the paper's default configuration
    // (Th_Ncover = Th_Pcover = 0.01, 6 MLFQ queues).
    let algo = EulerFd::new();
    let (fds, report) = algo.discover_with_report(&relation);

    println!("\ndiscovered {} non-trivial minimal FDs:", fds.len());
    for fd in &fds {
        println!("  {}", fd.display(relation.column_names()));
    }

    println!("\nrun report:");
    println!("  tuple pairs compared : {}", report.sampler.pairs_compared);
    println!("  sampling calls       : {}", report.sampler.samples);
    println!("  inversion phases     : {}", report.inversions);
    println!("  negative cover size  : {}", report.ncover_size);

    // On nine rows sampling exhausts all evidence, so the result is exact:
    // every reported FD holds on the full relation and is minimal.
    let problems = verify_fds(&relation, &fds);
    if problems.is_empty() {
        println!("\nverification: all {} FDs hold and are minimal ✓", fds.len());
    } else {
        println!("\nverification problems:");
        for p in &problems {
            println!("  {p}");
        }
    }
}
