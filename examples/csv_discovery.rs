//! End-to-end CSV pipeline: write a CSV file, read it back, and compare all
//! five discovery algorithms on it — runtime, FD count, and agreement.
//!
//! ```text
//! cargo run --example csv_discovery [path/to/file.csv]
//! ```
//!
//! With no argument the example writes a bundled sample (an abalone-shaped
//! synthetic table) to a temporary file first, so it always runs standalone.

use eulerfd::EulerFd;
use fd_baselines::{AidFd, FastFds, Fdep, HyFd, Tane};
use fd_core::Accuracy;
use fd_relation::{read_csv_file, synth, write_csv, CsvOptions, FdAlgorithm, Relation};
use std::time::Instant;

type AlgoRunner = Box<dyn Fn(&Relation) -> fd_core::FdSet>;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // No input given: materialize a synthetic dataset as CSV.
            let relation = synth::dataset_spec("abalone").expect("registered").generate(2000);
            let path = std::env::temp_dir().join("eulerfd_example_abalone.csv");
            let header = relation.column_names().to_vec();
            let rows = (0..relation.n_rows()).map(|t| {
                (0..relation.n_attrs())
                    .map(|a| relation.label(t as u32, a as u16).to_string())
                    .collect::<Vec<String>>()
            });
            let file = std::fs::File::create(&path).expect("create temp csv");
            write_csv(file, &header, rows, b',').expect("write csv");
            println!("[wrote sample dataset to {}]", path.display());
            path
        }
    };

    let relation = match read_csv_file(&path, &CsvOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed to read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    println!(
        "loaded {}: {} rows x {} attributes\n",
        relation.name(),
        relation.n_rows(),
        relation.n_attrs()
    );

    let algos: Vec<(&str, AlgoRunner)> = vec![
        ("Tane", Box::new(|r: &Relation| Tane::new().discover(r))),
        ("Fdep", Box::new(|r: &Relation| Fdep::new().discover(r))),
        ("FastFDs", Box::new(|r: &Relation| FastFds::new().discover(r))),
        ("HyFD", Box::new(|r: &Relation| HyFd::default().discover(r))),
        ("AID-FD", Box::new(|r: &Relation| AidFd::default().discover(r))),
        ("EulerFD", Box::new(|r: &Relation| EulerFd::new().discover(r))),
    ];

    // HyFD serves as the exact reference for the accuracy column.
    let truth = HyFd::default().discover(&relation);

    println!("{:<8} {:>10} {:>8} {:>7}", "algo", "time[ms]", "FDs", "F1");
    for (name, run) in &algos {
        let start = Instant::now();
        let fds = run(&relation);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let f1 = Accuracy::of(&fds, &truth).f1;
        println!("{name:<8} {ms:>10.2} {:>8} {f1:>7.3}", fds.len());
    }
}
