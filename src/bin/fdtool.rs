//! `fdtool` — command-line front end for the EulerFD suite.
//!
//! ```text
//! fdtool discover <file.csv> [--algo euler|aid|hyfd|tane|fdep|fastfds] [--sep ;] [--no-header]
//! fdtool keys     <file.csv> [--sep ;] [--no-header]
//! fdtool profile  <file.csv>            # column statistics
//! fdtool compare  <file.csv>            # all algorithms side by side
//! fdtool generate <dataset> <rows> <out.csv>   # materialize a benchmark dataset
//! fdtool datasets                       # list generatable datasets
//! ```
//!
//! This is the "DMS-shaped" entry point: point it at a CSV and get the
//! dependency structure, candidate keys, or a cross-algorithm comparison.

use eulerfd::EulerFd;
use eulerfd_suite::baselines::{AidFd, FastFds, Fdep, HyFd, Tane};
use eulerfd_suite::core::{bcnf_violations, candidate_keys, Accuracy, FdSet};
use eulerfd_suite::relation::synth::{dataset_names, dataset_spec};
use eulerfd_suite::relation::{
    read_csv_file, write_csv, CsvOptions, FdAlgorithm, Relation,
};
use std::io::Write;
use std::process::exit;
use std::time::Instant;

/// Writes bulk output, exiting quietly when the consumer (e.g. `head`)
/// closes the pipe instead of panicking on `println!`.
fn emit_lines<I: IntoIterator<Item = String>>(lines: I) {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for line in lines {
        if writeln!(out, "{line}").is_err() {
            exit(0);
        }
    }
    if out.flush().is_err() {
        exit(0);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        Some("discover") => discover(&args[1..]),
        Some("keys") => keys(&args[1..]),
        Some("profile") => profile_cmd(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("generate") => generate(&args[1..]),
        Some("datasets") => {
            emit_lines(dataset_names().into_iter().map(|name| {
                let spec = dataset_spec(name).expect("registered");
                format!(
                    "{name:<16} {} cols, paper {} rows, default {} rows",
                    spec.paper_cols, spec.paper_rows, spec.default_rows
                )
            }));
        }
        _ => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  fdtool discover <file.csv> [--algo euler|aid|hyfd|tane|fdep|fastfds] [--sep C] [--no-header]\n  fdtool keys <file.csv> [--sep C] [--no-header]\n  fdtool profile <file.csv> [--sep C] [--no-header]\n  fdtool compare <file.csv> [--sep C] [--no-header]\n  fdtool generate <dataset> <rows> <out.csv>\n  fdtool datasets"
    );
    exit(2);
}

struct FileArgs {
    path: String,
    options: CsvOptions,
    algo: String,
}

fn parse_file_args(args: &[String]) -> FileArgs {
    let mut path = None;
    let mut options = CsvOptions::default();
    let mut algo = "euler".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sep" => {
                let v = it.next().unwrap_or_else(|| usage());
                options.separator = *v.as_bytes().first().unwrap_or(&b',');
            }
            "--no-header" => options.has_header = false,
            "--algo" => algo = it.next().unwrap_or_else(|| usage()).clone(),
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    FileArgs { path: path.unwrap_or_else(|| usage()), options, algo }
}

fn load(path: &str, options: &CsvOptions) -> Relation {
    match read_csv_file(path, options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            exit(1);
        }
    }
}

fn run_algo(name: &str, relation: &Relation) -> FdSet {
    match name {
        "euler" => EulerFd::new().discover(relation),
        "aid" => AidFd::default().discover(relation),
        "hyfd" => HyFd::default().discover(relation),
        "tane" => Tane::new().discover(relation),
        "fdep" => Fdep::new().discover(relation),
        "fastfds" => FastFds::new().discover(relation),
        other => {
            eprintln!("unknown algorithm {other}");
            exit(2);
        }
    }
}

fn discover(args: &[String]) {
    let fa = parse_file_args(args);
    let relation = load(&fa.path, &fa.options);
    eprintln!(
        "{}: {} rows x {} attributes, algorithm {}",
        relation.name(),
        relation.n_rows(),
        relation.n_attrs(),
        fa.algo
    );
    let start = Instant::now();
    let fds = run_algo(&fa.algo, &relation);
    eprintln!("{} FDs in {:.3}s", fds.len(), start.elapsed().as_secs_f64());
    emit_lines(fds.iter().map(|fd| fd.display(relation.column_names()).to_string()));
}

fn profile_cmd(args: &[String]) {
    let fa = parse_file_args(args);
    let relation = load(&fa.path, &fa.options);
    print!("{}", eulerfd_suite::relation::profile(&relation).render());
}

fn keys(args: &[String]) {
    let fa = parse_file_args(args);
    let relation = load(&fa.path, &fa.options);
    let fds = run_algo(&fa.algo, &relation);
    let keys = candidate_keys(relation.n_attrs(), &fds);
    println!("candidate keys:");
    for key in &keys {
        println!("  {}", key.display(relation.column_names()));
    }
    let violations = bcnf_violations(relation.n_attrs(), &fds);
    if violations.is_empty() {
        println!("schema is in BCNF under the discovered FDs");
    } else {
        println!("BCNF violations:");
        for fd in &violations {
            println!("  {}", fd.display(relation.column_names()));
        }
    }
}

fn compare(args: &[String]) {
    let fa = parse_file_args(args);
    let relation = load(&fa.path, &fa.options);
    println!(
        "{}: {} rows x {} attributes",
        relation.name(),
        relation.n_rows(),
        relation.n_attrs()
    );
    // HyFD is exact and usually feasible on CLI-sized inputs: use it as the
    // accuracy reference.
    let truth = HyFd::default().discover(&relation);
    println!("{:<8} {:>10} {:>8} {:>7}", "algo", "time[ms]", "FDs", "F1");
    for name in ["tane", "fdep", "fastfds", "hyfd", "aid", "euler"] {
        let start = Instant::now();
        let fds = run_algo(name, &relation);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let f1 = Accuracy::of(&fds, &truth).f1;
        println!("{name:<8} {ms:>10.2} {:>8} {f1:>7.3}", fds.len());
    }
}

fn generate(args: &[String]) {
    let (name, rows, out) = match args {
        [name, rows, out] => (name, rows, out),
        _ => usage(),
    };
    let spec = dataset_spec(name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name}; run `fdtool datasets` for the list");
        exit(2);
    });
    let rows: usize = rows.parse().unwrap_or_else(|_| usage());
    let relation = spec.generate(rows);
    let header = relation.column_names().to_vec();
    let row_iter = (0..relation.n_rows()).map(|t| {
        (0..relation.n_attrs())
            .map(|a| relation.label(t as u32, a as u16).to_string())
            .collect::<Vec<String>>()
    });
    let file = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1);
    });
    write_csv(file, &header, row_iter, b',').expect("write csv");
    eprintln!("wrote {} rows x {} cols to {out}", relation.n_rows(), relation.n_attrs());
}
