//! `fdtool` — command-line front end for the EulerFD suite.
//!
//! ```text
//! fdtool discover <file.csv> [--algo euler|aid|hyfd|tane|fdep|fastfds] [--sep ;] [--no-header]
//!                            [--budget-ms N] [--on-ragged error|skip|pad]
//!                            [--metrics-out <path>] [--metrics-summary]
//!                            [--delta-csv <rows.csv>] [--delete-rows 3,17,99]
//! fdtool keys     <file.csv> [--sep ;] [--no-header]
//! fdtool profile  <file.csv>            # column statistics
//! fdtool compare  <file.csv>            # all algorithms side by side
//! fdtool generate <dataset> <rows> <out.csv>   # materialize a benchmark dataset
//! fdtool datasets                       # list generatable datasets
//! fdtool serve    [--socket PATH] [--load name=file.csv ...] [--workers N]
//!                 [--budget-ms N] [--sep C] [--no-header]
//!                 [--metrics-interval-ms N] [--prom-out PATH] [--slow-ms N]
//! fdtool top      <socket> [--interval-ms N] [--iterations N]
//! ```
//!
//! This is the "DMS-shaped" entry point: point it at a CSV and get the
//! dependency structure, candidate keys, or a cross-algorithm comparison.
//! `--budget-ms` gives discovery a wall-clock deadline (anytime execution:
//! a tripped run reports its sound partial result); `--on-ragged` chooses
//! what to do with rows whose field count disagrees with the header.
//!
//! `--delta-csv <rows.csv>` and/or `--delete-rows <ids>` switch `discover`
//! into incremental mode: the base table is discovered cold with the exact
//! delta-maintenance engine, the delta is applied incrementally (new rows
//! encoded against the base table's value dictionaries, deletes by 0-based
//! row id), and the timings of the incremental repair and a cold re-run on
//! the mutated table are printed side by side, with an identity check on
//! the two FD sets.
//!
//! `serve` turns the binary into an always-on discovery server speaking the
//! [`eulerfd_suite::server::protocol`] line protocol — one request per line,
//! one JSON object per response line — over stdin/stdout by default or a
//! Unix socket with `--socket`. `--load name=file.csv` registers datasets at
//! startup; clients can also `register` at runtime.
//!
//! `--metrics-out <path>` writes one versioned `fd-telemetry/v1` JSON
//! snapshot of every counter, histogram, and cycle-trace event the run
//! emitted; `--metrics-summary` prints the human-readable table to stderr.
//! Both switch recording on for the run; the binary must be built with
//! `--features telemetry` for the snapshot to carry data (an untelemetered
//! build writes a valid, empty snapshot with `"compiled": false`).

use eulerfd::EulerFd;
use eulerfd_suite::baselines::{AidFd, FastFds, Fdep, HyFd, Tane};
use eulerfd_suite::core::{bcnf_violations, candidate_keys, Accuracy, Budget, FdSet, Termination};
use eulerfd_suite::relation::synth::{dataset_names, dataset_spec};
use eulerfd_suite::relation::{
    read_csv_file_with_dictionaries, read_csv_file_with_report, read_csv_rows_file, write_csv,
    CsvOptions, FdAlgorithm, NullLabeling, NullPolicy, RaggedPolicy, Relation,
};
use std::io::Write;
use std::process::exit;
use std::time::{Duration, Instant};

/// Writes bulk output, exiting quietly when the consumer (e.g. `head`)
/// closes the pipe instead of panicking on `println!`.
fn emit_lines<I: IntoIterator<Item = String>>(lines: I) {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for line in lines {
        if writeln!(out, "{line}").is_err() {
            exit(0);
        }
    }
    if out.flush().is_err() {
        exit(0);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(|s| s.as_str()) {
        Some("discover") => discover(&args[1..]),
        Some("keys") => keys(&args[1..]),
        Some("profile") => profile_cmd(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("generate") => generate(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("top") => top(&args[1..]),
        Some("datasets") => {
            emit_lines(dataset_names().into_iter().filter_map(dataset_spec).map(|spec| {
                format!(
                    "{:<16} {} cols, paper {} rows, default {} rows",
                    spec.name, spec.paper_cols, spec.paper_rows, spec.default_rows
                )
            }));
        }
        _ => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  fdtool discover <file.csv> [--algo euler|aid|hyfd|tane|fdep|fastfds] [--sep C] [--no-header] [--budget-ms N] [--on-ragged error|skip|pad] [--metrics-out PATH] [--metrics-summary] [--delta-csv ROWS.csv] [--delete-rows 3,17,99]\n  fdtool keys <file.csv> [--sep C] [--no-header] [--budget-ms N] [--on-ragged P]\n  fdtool profile <file.csv> [--sep C] [--no-header] [--on-ragged P]\n  fdtool compare <file.csv> [--sep C] [--no-header] [--budget-ms N] [--on-ragged P] [--metrics-out PATH] [--metrics-summary]\n  fdtool generate <dataset> <rows> <out.csv>\n  fdtool datasets\n  fdtool serve [--socket PATH] [--load name=file.csv ...] [--workers N] [--budget-ms N] [--sep C] [--no-header] [--metrics-interval-ms N] [--prom-out PATH] [--slow-ms N]\n  fdtool top <socket> [--interval-ms N] [--iterations N]"
    );
    exit(2);
}

struct FileArgs {
    path: String,
    options: CsvOptions,
    algo: String,
    deadline: Option<Duration>,
    metrics_out: Option<String>,
    metrics_summary: bool,
    delta_csv: Option<String>,
    delete_rows: Vec<u32>,
}

impl FileArgs {
    /// A fresh budget per run: the deadline clock starts when the run does,
    /// not at argument parsing, so `compare` gives every algorithm the same
    /// allowance.
    fn budget(&self) -> Budget {
        match self.deadline {
            Some(d) => Budget::with_deadline(d),
            None => Budget::unlimited(),
        }
    }

    /// Switches telemetry recording on when either metrics flag was given.
    fn arm_metrics(&self) {
        if self.metrics_out.is_some() || self.metrics_summary {
            if !fd_telemetry::compiled() {
                eprintln!(
                    "note: this build has no `telemetry` feature; the snapshot will be empty"
                );
            }
            fd_telemetry::set_enabled(true);
        }
    }

    /// Serializes/prints the telemetry snapshot per the metrics flags.
    fn emit_metrics(&self) {
        if self.metrics_out.is_none() && !self.metrics_summary {
            return;
        }
        let snap = fd_telemetry::snapshot();
        if let Some(path) = &self.metrics_out {
            if let Err(e) = std::fs::write(path, snap.to_json()) {
                eprintln!("cannot write metrics to {path}: {e}");
                exit(1);
            }
            eprintln!("metrics written to {path}");
        }
        if self.metrics_summary {
            eprint!("{}", snap.summary());
        }
    }
}

/// Parses a `--sep` value: exactly one byte, or exit 2 with usage. The old
/// behaviour silently fell back to `,` on an empty or multi-byte value,
/// which made `--sep ";;"` parse the file with the wrong separator and
/// report nonsense FDs instead of failing fast.
fn parse_sep(v: &str) -> u8 {
    match v.as_bytes() {
        [b] => *b,
        _ => {
            eprintln!("--sep takes exactly one byte, got '{v}'");
            usage()
        }
    }
}

fn parse_file_args(args: &[String]) -> FileArgs {
    let mut path = None;
    let mut options = CsvOptions::default();
    let mut algo = "euler".to_string();
    let mut deadline = None;
    let mut metrics_out = None;
    let mut metrics_summary = false;
    let mut delta_csv = None;
    let mut delete_rows = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--delta-csv" => delta_csv = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--delete-rows" => {
                let v = it.next().unwrap_or_else(|| usage());
                delete_rows = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<u32>().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--sep" => {
                options.separator = parse_sep(it.next().unwrap_or_else(|| usage()));
            }
            "--no-header" => options.has_header = false,
            "--algo" => algo = it.next().unwrap_or_else(|| usage()).clone(),
            "--budget-ms" => {
                let v = it.next().unwrap_or_else(|| usage());
                let ms: u64 = v.parse().unwrap_or_else(|_| usage());
                deadline = Some(Duration::from_millis(ms));
            }
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--metrics-summary" => metrics_summary = true,
            "--on-ragged" => {
                options.on_ragged = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "error" => RaggedPolicy::Error,
                    "skip" => RaggedPolicy::Skip,
                    "pad" => RaggedPolicy::Pad,
                    _ => usage(),
                };
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    FileArgs {
        path: path.unwrap_or_else(|| usage()),
        options,
        algo,
        deadline,
        metrics_out,
        metrics_summary,
        delta_csv,
        delete_rows,
    }
}

fn load(path: &str, options: &CsvOptions) -> Relation {
    match read_csv_file_with_report(path, options) {
        Ok((r, report)) => {
            if !report.issues.is_empty() {
                eprintln!(
                    "{path}: kept {} of {} data rows; {} shape issue(s):",
                    report.rows_kept,
                    report.rows_read,
                    report.issues.len()
                );
                for issue in report.issues.iter().take(5) {
                    eprintln!(
                        "  row {}: {} fields, expected {} -> {:?}",
                        issue.row, issue.found, issue.expected, issue.action
                    );
                }
                if report.issues.len() > 5 {
                    eprintln!("  ... and {} more", report.issues.len() - 5);
                }
            }
            r
        }
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            exit(1);
        }
    }
}

/// Runs one algorithm under `budget`. Algorithms without a budgeted path
/// (Fdep, HyFD, AID-FD) run to completion and the deadline is advisory.
fn run_algo(name: &str, relation: &Relation, budget: &Budget) -> (FdSet, Termination) {
    let note_unbudgeted = |algo: &str| {
        if !budget.is_unlimited() {
            eprintln!("note: {algo} has no budgeted path; --budget-ms is ignored for it");
        }
    };
    match name {
        "euler" => {
            let (fds, report) = EulerFd::new().discover_budgeted(relation, budget);
            (fds, report.termination)
        }
        "tane" => Tane::new().discover_budgeted(relation, budget),
        "fastfds" => FastFds::new().discover_budgeted(relation, budget),
        "aid" => {
            note_unbudgeted("aid");
            (AidFd::default().discover(relation), Termination::Converged)
        }
        "hyfd" => {
            note_unbudgeted("hyfd");
            (HyFd::default().discover(relation), Termination::Converged)
        }
        "fdep" => {
            note_unbudgeted("fdep");
            (Fdep::new().discover(relation), Termination::Converged)
        }
        other => {
            eprintln!("unknown algorithm {other}");
            exit(2);
        }
    }
}

fn discover(args: &[String]) {
    let fa = parse_file_args(args);
    if fa.delta_csv.is_some() || !fa.delete_rows.is_empty() {
        discover_delta(&fa);
        return;
    }
    fa.arm_metrics();
    let relation = load(&fa.path, &fa.options);
    eprintln!(
        "{}: {} rows x {} attributes, algorithm {}",
        relation.name(),
        relation.n_rows(),
        relation.n_attrs(),
        fa.algo
    );
    let start = Instant::now();
    let (fds, termination) = run_algo(&fa.algo, &relation, &fa.budget());
    if termination.is_partial() {
        eprintln!(
            "{} FDs in {:.3}s (budget tripped: {termination}; partial result)",
            fds.len(),
            start.elapsed().as_secs_f64()
        );
    } else {
        eprintln!("{} FDs in {:.3}s", fds.len(), start.elapsed().as_secs_f64());
    }
    fa.emit_metrics();
    emit_lines(fds.iter().map(|fd| fd.display(relation.column_names()).to_string()));
}

/// Incremental discovery: cold run on the base table, then an in-place
/// delta repair, timed against a cold re-run on the mutated table.
fn discover_delta(fa: &FileArgs) {
    if fa.algo != "euler" {
        eprintln!("--delta-csv/--delete-rows use the exact incremental EulerFD engine; --algo {} is not supported", fa.algo);
        exit(2);
    }
    fa.arm_metrics();
    let (relation, mut dicts, report) =
        match read_csv_file_with_dictionaries(&fa.path, &fa.options) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error reading {}: {e}", fa.path);
                exit(1);
            }
        };
    if !report.issues.is_empty() {
        eprintln!(
            "{}: kept {} of {} data rows ({} shape issue(s))",
            fa.path,
            report.rows_kept,
            report.rows_read,
            report.issues.len()
        );
    }
    eprintln!(
        "{}: {} rows x {} attributes (base table)",
        relation.name(),
        relation.n_rows(),
        relation.n_attrs()
    );
    for &d in &fa.delete_rows {
        if d as usize >= relation.n_rows() {
            eprintln!("--delete-rows: row id {d} is out of range (base table has {} rows)", relation.n_rows());
            exit(2);
        }
    }

    // Encode the delta rows against the base table's dictionaries: known
    // values keep their labels, unseen values get fresh ones, and nulls
    // follow the same token + policy as the base ingestion.
    let labeling = match fa.options.null_policy {
        NullPolicy::NullEqualsNull => NullLabeling::Shared,
        NullPolicy::NullNotEquals => NullLabeling::Distinct,
    };
    let mut inserts: Vec<Vec<u32>> = Vec::new();
    if let Some(delta_path) = &fa.delta_csv {
        let (names, rows) = match read_csv_rows_file(delta_path, &fa.options) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error reading {delta_path}: {e}");
                exit(1);
            }
        };
        if names.len() != relation.n_attrs() {
            eprintln!(
                "{delta_path}: {} columns, but the base table has {}",
                names.len(),
                relation.n_attrs()
            );
            exit(2);
        }
        let is_null = |field: &str| {
            field.is_empty() || fa.options.null_token.as_deref() == Some(field)
        };
        for row in &rows {
            let nullable: Vec<Option<&str>> =
                row.iter().map(|f| if is_null(f) { None } else { Some(f.as_str()) }).collect();
            inserts.push(dicts.encode_nullable_row(&nullable, labeling));
        }
    }

    let start = Instant::now();
    let mut engine = EulerFd::new().discover_incremental(&relation);
    let cold_s = start.elapsed().as_secs_f64();
    eprintln!("cold discovery: {} FDs in {cold_s:.3}s", engine.fds().len());

    let start = Instant::now();
    let delta_report = engine.apply_delta(&inserts, &fa.delete_rows);
    let incremental_s = start.elapsed().as_secs_f64();
    eprintln!(
        "delta: +{} rows, -{} rows -> {} rows; {} agree set(s) died, {} fresh, {} candidate(s) revived",
        delta_report.rows_inserted,
        delta_report.rows_deleted,
        engine.relation().n_rows(),
        delta_report.dead_agree_sets,
        delta_report.fresh_agree_sets,
        delta_report.candidates_revived,
    );

    // Reference: what a from-scratch run on the mutated table costs.
    let start = Instant::now();
    let cold_engine = EulerFd::new().discover_incremental(engine.relation());
    let recold_s = start.elapsed().as_secs_f64();
    let identical = cold_engine.fds() == engine.fds();
    let fds = engine.fds();
    eprintln!(
        "incremental re-discovery: {} FDs in {incremental_s:.3}s ({:.1}% of the {recold_s:.3}s cold re-run); FD sets {}",
        fds.len(),
        100.0 * incremental_s / recold_s.max(1e-9),
        if identical { "identical" } else { "DIVERGED" },
    );
    fa.emit_metrics();
    if !identical {
        exit(1);
    }
    emit_lines(fds.iter().map(|fd| fd.display(relation.column_names()).to_string()));
}

fn profile_cmd(args: &[String]) {
    let fa = parse_file_args(args);
    let relation = load(&fa.path, &fa.options);
    print!("{}", eulerfd_suite::relation::profile(&relation).render());
}

fn keys(args: &[String]) {
    let fa = parse_file_args(args);
    fa.arm_metrics();
    let relation = load(&fa.path, &fa.options);
    let (fds, termination) = run_algo(&fa.algo, &relation, &fa.budget());
    fa.emit_metrics();
    if termination.is_partial() {
        eprintln!("budget tripped ({termination}): keys below reflect a partial FD set");
    }
    let keys = candidate_keys(relation.n_attrs(), &fds);
    println!("candidate keys:");
    for key in &keys {
        println!("  {}", key.display(relation.column_names()));
    }
    let violations = bcnf_violations(relation.n_attrs(), &fds);
    if violations.is_empty() {
        println!("schema is in BCNF under the discovered FDs");
    } else {
        println!("BCNF violations:");
        for fd in &violations {
            println!("  {}", fd.display(relation.column_names()));
        }
    }
}

fn compare(args: &[String]) {
    let fa = parse_file_args(args);
    fa.arm_metrics();
    let relation = load(&fa.path, &fa.options);
    println!(
        "{}: {} rows x {} attributes",
        relation.name(),
        relation.n_rows(),
        relation.n_attrs()
    );
    // HyFD is exact and usually feasible on CLI-sized inputs: use it as the
    // accuracy reference.
    let truth = HyFd::default().discover(&relation);
    println!("{:<8} {:>10} {:>8} {:>7}", "algo", "time[ms]", "FDs", "F1");
    for name in ["tane", "fdep", "fastfds", "hyfd", "aid", "euler"] {
        let start = Instant::now();
        let (fds, termination) = run_algo(name, &relation, &fa.budget());
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let f1 = Accuracy::of(&fds, &truth).f1;
        let mark = if termination.is_partial() { "*" } else { "" };
        println!("{name:<8} {ms:>10.2} {:>8} {f1:>7.3}{mark}", fds.len());
    }
    fa.emit_metrics();
}

fn generate(args: &[String]) {
    let (name, rows, out) = match args {
        [name, rows, out] => (name, rows, out),
        _ => usage(),
    };
    let spec = dataset_spec(name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name}; run `fdtool datasets` for the list");
        exit(2);
    });
    let rows: usize = rows.parse().unwrap_or_else(|_| usage());
    let relation = spec.generate(rows);
    let header = relation.column_names().to_vec();
    let row_iter = (0..relation.n_rows()).map(|t| {
        (0..relation.n_attrs())
            .map(|a| relation.label(t as u32, a as u16).to_string())
            .collect::<Vec<String>>()
    });
    let file = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1);
    });
    if let Err(e) = write_csv(file, &header, row_iter, b',') {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    }
    eprintln!("wrote {} rows x {} cols to {out}", relation.n_rows(), relation.n_attrs());
}

/// `fdtool serve`: the always-on discovery server. Speaks the line protocol
/// over stdin/stdout (the default, so `echo "discover d" | fdtool serve
/// --load d=t.csv` works from a shell) or a Unix socket with `--socket`.
fn serve(args: &[String]) {
    use eulerfd_suite::server::{protocol, MetricsConfig, Server, ServerConfig};
    let mut config = ServerConfig::default();
    let mut socket: Option<String> = None;
    let mut preload: Vec<(String, String)> = Vec::new();
    // Metrics default ON at a 1 s sampling window when the build carries the
    // telemetry feature; `--metrics-interval-ms 0` switches the plane off.
    let mut metrics_interval_ms: u64 = 1000;
    let mut prom_out: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--metrics-interval-ms" => {
                let v = it.next().unwrap_or_else(|| usage());
                metrics_interval_ms = v.parse().unwrap_or_else(|_| usage());
            }
            "--prom-out" => prom_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--slow-ms" => {
                let v = it.next().unwrap_or_else(|| usage());
                slow_ms = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--load" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (name, path) = spec.split_once('=').unwrap_or_else(|| {
                    eprintln!("--load takes name=file.csv, got '{spec}'");
                    usage()
                });
                preload.push((name.to_owned(), path.to_owned()));
            }
            "--workers" => {
                let v = it.next().unwrap_or_else(|| usage());
                config.workers = v.parse().unwrap_or_else(|_| usage());
                if config.workers == 0 {
                    eprintln!("--workers must be at least 1");
                    usage()
                }
            }
            "--budget-ms" => {
                let v = it.next().unwrap_or_else(|| usage());
                let ms: u64 = v.parse().unwrap_or_else(|_| usage());
                config.job_deadline = Some(Duration::from_millis(ms));
            }
            "--sep" => {
                config.csv.separator = parse_sep(it.next().unwrap_or_else(|| usage()));
            }
            "--no-header" => config.csv.has_header = false,
            _ => usage(),
        }
    }
    if metrics_interval_ms > 0 && fd_telemetry::compiled() {
        let mut mc = MetricsConfig {
            interval: Duration::from_millis(metrics_interval_ms),
            prom_out: prom_out.clone(),
            ..MetricsConfig::default()
        };
        if let Some(ms) = slow_ms {
            mc.slow_job_threshold = Duration::from_millis(ms);
        }
        config.metrics = Some(mc);
    } else if prom_out.is_some() || slow_ms.is_some() {
        eprintln!(
            "note: metrics plane is off ({}); --prom-out/--slow-ms have no effect",
            if fd_telemetry::compiled() {
                "--metrics-interval-ms 0"
            } else {
                "build without the `telemetry` feature"
            }
        );
    }
    let server = Server::start(config);
    for (name, path) in &preload {
        match server.register_csv(name, path) {
            Ok(info) => eprintln!(
                "loaded {}: {} rows x {} cols, {} FDs",
                info.name, info.rows, info.cols, info.fd_count
            ),
            Err(e) => {
                eprintln!("cannot load {name} from {path}: {e}");
                exit(1);
            }
        }
    }
    let served = match &socket {
        Some(path) => {
            eprintln!("serving on unix socket {path}");
            protocol::serve_unix(&server, path)
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            protocol::serve_lines(&server, stdin.lock(), stdout.lock())
        }
    };
    if let Err(e) = served {
        eprintln!("serve error: {e}");
        exit(1);
    }
}

/// `fdtool top`: a live terminal view of a running server's metrics plane.
/// Connects to the server's Unix socket, issues `metrics` once per interval,
/// and renders the aggregate reply — gauges, the hottest counter rates, and
/// the slow-job ring — as a compact dashboard.
fn top(args: &[String]) {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;
    let mut socket: Option<String> = None;
    let mut interval_ms: u64 = 2000;
    let mut iterations: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval-ms" => {
                let v = it.next().unwrap_or_else(|| usage());
                interval_ms = v.parse().unwrap_or_else(|_| usage());
            }
            "--iterations" => {
                let v = it.next().unwrap_or_else(|| usage());
                iterations = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            other if socket.is_none() && !other.starts_with("--") => {
                socket = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let path = socket.unwrap_or_else(|| usage());
    let stream = UnixStream::connect(&path).unwrap_or_else(|e| {
        eprintln!("cannot connect to {path}: {e}");
        exit(1);
    });
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| {
        eprintln!("cannot clone socket: {e}");
        exit(1);
    }));
    let mut writer = stream;
    let mut shown = 0u64;
    loop {
        if writer.write_all(b"metrics\n").and_then(|()| writer.flush()).is_err() {
            eprintln!("server closed the connection");
            exit(1);
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                eprintln!("server closed the connection");
                exit(1);
            }
            Ok(_) => render_top(&path, line.trim()),
        }
        shown += 1;
        if iterations.is_some_and(|n| shown >= n) {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// Renders one `metrics` reply as a dashboard frame. The scanning is naive
/// string slicing, not a JSON parser: the suite's replies are single-line,
/// with unescaped keys and flat number-valued `gauges`/`rates` objects,
/// which is all this needs.
fn render_top(path: &str, line: &str) {
    if !line.contains("\"ok\":true") {
        eprintln!("server error: {line}");
        exit(1);
    }
    let windows = scan_number(line, "windows").unwrap_or(0.0);
    let span_ms = scan_number(line, "span_ms").unwrap_or(0.0);
    println!(
        "fd-server top — {path} | {windows:.0} window(s), {:.1}s span",
        span_ms / 1000.0
    );
    if let Some(body) = scan_object(line, "gauges") {
        println!("  gauges:");
        for (k, v) in flat_pairs(body) {
            println!("    {k:<28} {v}");
        }
    }
    if let Some(body) = scan_object(line, "rates") {
        let mut pairs: Vec<(String, f64)> = flat_pairs(body)
            .into_iter()
            .filter_map(|(k, v)| v.parse::<f64>().ok().map(|n| (k, n)))
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        println!("  rates (/s):");
        for (k, v) in pairs.into_iter().take(12) {
            println!("    {k:<28} {v:.1}");
        }
    }
    if let Some(body) = scan_array(line, "slow_jobs") {
        if !body.is_empty() {
            println!("  slow jobs:");
            for entry in body.split("},{") {
                let job = scan_number(entry, "job").unwrap_or(0.0);
                let wall = scan_number(entry, "wall_ms").unwrap_or(0.0);
                let dataset = scan_string(entry, "dataset").unwrap_or("?");
                println!("    job {job:.0} on {dataset}: {wall:.1} ms");
            }
        }
    }
    println!();
}

/// Extracts the body of `"key":{...}` from a single-line reply by brace
/// counting (handles nested objects).
fn scan_object<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":{{");
    let start = line.find(&pat)? + pat.len();
    let mut depth = 1usize;
    for (i, c) in line[start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the body of `"key":[...]` (no nested arrays in our replies).
fn scan_array<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find(']')?;
    Some(&line[start..start + end])
}

/// Reads the number following `"key":`.
fn scan_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads the string following `"key":"` up to the closing quote.
fn scan_string<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Splits a flat `"k":v` object body (number values only) into pairs.
fn flat_pairs(body: &str) -> Vec<(String, String)> {
    body.split(',')
        .filter_map(|item| {
            let (k, v) = item.split_once(':')?;
            Some((k.trim_matches('"').to_string(), v.to_string()))
        })
        .collect()
}
