//! Umbrella crate for the EulerFD reproduction.
//!
//! Re-exports the workspace crates under one roof so that examples and
//! integration tests can `use eulerfd_suite::...`. See the individual crates
//! for the real APIs:
//!
//! * [`core`] (`fd-core`) — attribute bitsets, FDs, covers, trees, metrics.
//! * [`relation`] (`fd-relation`) — relations, CSV I/O, partitions, generators.
//! * [`algo`] (`eulerfd`) — the EulerFD double-cycle algorithm itself.
//! * [`baselines`] (`fd-baselines`) — brute force, Tane, Fdep, HyFD, AID-FD.
//! * [`server`] (`fd-server`) — catalog, sessions, and the fair-scheduled
//!   job queue behind `fdtool serve`.

pub use eulerfd as algo;
pub use fd_baselines as baselines;
pub use fd_core as core;
pub use fd_relation as relation;
pub use fd_server as server;
